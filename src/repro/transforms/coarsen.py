"""Thread and block coarsening as granularity variation (§V of the paper).

Both are built on :func:`~repro.transforms.unroll_interleave.unroll_and_interleave`:

* **thread coarsening** unrolls the thread-level ``scf.parallel`` with
  coalescing-friendly indexing; factors must divide the block extent and the
  transformation is always legal (§V-A);
* **block coarsening** unrolls the block-level ``scf.parallel`` with
  contiguous indexing, duplicating shared-memory allocations and emitting an
  epilogue kernel for non-divisor factors (§V-B, §V-C). It is illegal when
  thread barriers sit under block-dependent control flow.

Multi-dimensional *total* factors are balanced across dimensions with the
paper's strategy (footnote 4): 16 → (4, 2, 2), 6 → (3, 2, 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dialects import arith, polygeist, scf
from ..ir import Operation
from .unroll_interleave import IllegalUnroll, unroll_and_interleave


class CoarsenError(ValueError):
    pass


@dataclass
class CoarsenResult:
    """What a coarsening request actually did."""

    block_factors: Tuple[int, ...] = ()
    thread_factors: Tuple[int, ...] = ()
    epilogues: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def total_block(self) -> int:
        return _product(self.block_factors)

    @property
    def total_thread(self) -> int:
        return _product(self.thread_factors)

    def describe(self) -> str:
        return "block=%s thread=%s" % (
            "x".join(map(str, self.block_factors)) or "1",
            "x".join(map(str, self.thread_factors)) or "1")


def _product(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


def _prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return sorted(factors, reverse=True)


def balance_factors(total: int, extents: Sequence[Optional[int]],
                    require_divisors: bool = False) -> List[int]:
    """Distribute ``total`` across dimensions (paper footnote 4).

    Dimensions of extent 1 are skipped. With ``require_divisors`` a prime is
    only placed on a dimension whose extent stays divisible; primes that fit
    nowhere are dropped (reducing the effective total).
    """
    factors = [1] * len(extents)
    usable = [d for d, extent in enumerate(extents) if extent != 1]
    if not usable:
        return factors
    for prime in _prime_factors(total):
        candidates = []
        for d in usable:
            if require_divisors:
                extent = extents[d]
                if extent is None or extent % (factors[d] * prime) != 0:
                    continue
            candidates.append(d)
        if not candidates:
            continue
        best = min(candidates, key=lambda d: (factors[d], d))
        factors[best] *= prime
    return factors


# -- structure helpers -----------------------------------------------------------


def block_parallels(wrapper: Operation,
                    include_epilogues: bool = True) -> List[Operation]:
    """The block-level parallel loops directly inside a gpu_wrapper."""
    found = [op for op in wrapper.body_block().ops
             if scf.is_gpu_blocks(op)]
    if not include_epilogues:
        found = [op for op in found if not op.attr("coarsen.epilogue")]
    return found


def block_parallels_in_region(region) -> List[Operation]:
    """Block-level parallel loops at the top level of a region (used for
    the regions of a polygeist.alternatives op)."""
    return [op for op in region.entry.ops if scf.is_gpu_blocks(op)]


def thread_parallel(block_parallel: Operation) -> Operation:
    """The thread-level parallel nested in a block loop."""
    stack = [block_parallel.body_block()]
    while stack:
        block = stack.pop()
        for op in block.ops:
            if scf.is_gpu_threads(op):
                return op
            for region in op.regions:
                stack.extend(region.blocks)
    raise CoarsenError("no thread-level parallel found in block loop")


def parallel_extents(parallel: Operation) -> List[Optional[int]]:
    """Static extents per dimension (None when dynamic)."""
    extents: List[Optional[int]] = []
    for lb, ub in zip(scf.parallel_lower_bounds(parallel),
                      scf.parallel_upper_bounds(parallel)):
        lb_const = arith.constant_value(lb)
        ub_const = arith.constant_value(ub)
        if lb_const is None or ub_const is None:
            extents.append(None)
        else:
            extents.append(ub_const - lb_const)
    return extents


# -- coarsening entry points --------------------------------------------------------


def thread_coarsen(wrapper: Operation,
                   factors: Sequence[int]) -> CoarsenResult:
    """Apply per-dimension thread coarsening to every block loop (main and
    epilogues) of a gpu_wrapper."""
    result = CoarsenResult(thread_factors=tuple(factors))
    for block_loop in block_parallels(wrapper):
        threads = thread_parallel(block_loop)
        current = threads
        for dim, factor in enumerate(factors):
            if factor == 1:
                continue
            if dim >= scf.parallel_num_dims(current):
                raise CoarsenError(
                    "thread dimension %d out of range" % dim)
            try:
                current, _ = unroll_and_interleave(current, dim, factor,
                                                   style="thread")
            except IllegalUnroll as error:
                raise CoarsenError("thread coarsening failed: %s" % error)
    return result


def block_coarsen(wrapper: Operation,
                  factors: Sequence[int]) -> CoarsenResult:
    """Apply per-dimension block coarsening to the main block loop."""
    result = CoarsenResult(block_factors=tuple(factors))
    mains = block_parallels(wrapper, include_epilogues=False)
    if len(mains) != 1:
        raise CoarsenError("expected exactly one main block loop, found %d"
                           % len(mains))
    current = mains[0]
    for dim, factor in enumerate(factors):
        if factor == 1:
            continue
        if dim >= scf.parallel_num_dims(current):
            raise CoarsenError("block dimension %d out of range" % dim)
        try:
            current, epilogue = unroll_and_interleave(current, dim, factor,
                                                      style="block")
        except IllegalUnroll as error:
            raise CoarsenError("block coarsening failed: %s" % error)
        if epilogue is not None:
            result.epilogues += 1
    return result


def coarsen_wrapper(wrapper: Operation,
                    block_factors: Optional[Sequence[int]] = None,
                    thread_factors: Optional[Sequence[int]] = None,
                    block_total: Optional[int] = None,
                    thread_total: Optional[int] = None) -> CoarsenResult:
    """Combined coarsening of one gpu_wrapper.

    Either explicit per-dimension factors or a *total* factor (balanced
    across dimensions, footnote 4) may be given for each level. Block
    coarsening runs first (outer loop), then thread coarsening is applied
    inside every resulting block loop including epilogues.
    """
    if wrapper.name != polygeist.GPU_WRAPPER:
        raise CoarsenError("coarsen_wrapper expects a polygeist.gpu_wrapper")
    mains = block_parallels(wrapper, include_epilogues=False)
    if len(mains) != 1:
        raise CoarsenError("wrapper must hold exactly one block loop")
    result = CoarsenResult()

    if block_total is not None:
        if block_factors is not None:
            raise CoarsenError("give block_factors or block_total, not both")
        extents = parallel_extents(mains[0])
        block_factors = balance_factors(block_total, extents)
        if _product(block_factors) != block_total:
            result.notes.append(
                "block total %d reduced to %d by dimension limits" %
                (block_total, _product(block_factors)))
    if thread_total is not None:
        if thread_factors is not None:
            raise CoarsenError(
                "give thread_factors or thread_total, not both")
        extents = parallel_extents(thread_parallel(mains[0]))
        thread_factors = balance_factors(thread_total, extents,
                                         require_divisors=True)
        if _product(thread_factors) != thread_total:
            result.notes.append(
                "thread total %d reduced to %d by divisibility" %
                (thread_total, _product(thread_factors)))

    if block_factors and _product(block_factors) > 1:
        block_result = block_coarsen(wrapper, block_factors)
        result.block_factors = block_result.block_factors
        result.epilogues = block_result.epilogues
    else:
        result.block_factors = tuple(block_factors or ())
    if thread_factors and _product(thread_factors) > 1:
        thread_result = thread_coarsen(wrapper, thread_factors)
        result.thread_factors = thread_result.thread_factors
    else:
        result.thread_factors = tuple(thread_factors or ())
    return result
