"""Thread and block coarsening as granularity variation (§V of the paper).

Both are built on :func:`~repro.transforms.unroll_interleave.unroll_and_interleave`:

* **thread coarsening** unrolls the thread-level ``scf.parallel`` with
  coalescing-friendly indexing; factors must divide the block extent and the
  transformation is always legal (§V-A);
* **block coarsening** unrolls the block-level ``scf.parallel`` with
  contiguous indexing, duplicating shared-memory allocations and emitting an
  epilogue kernel for non-divisor factors (§V-B, §V-C). It is illegal when
  thread barriers sit under block-dependent control flow.

Multi-dimensional *total* factors are balanced across dimensions with the
paper's strategy (footnote 4): 16 → (4, 2, 2), 6 → (3, 2, 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dialects import arith, polygeist, scf
from ..ir import Operation
from .unroll_interleave import (IllegalUnroll, check_unroll_legality,
                                unroll_and_interleave)


class CoarsenError(ValueError):
    pass


@dataclass
class CoarsenResult:
    """What a coarsening request actually did."""

    block_factors: Tuple[int, ...] = ()
    thread_factors: Tuple[int, ...] = ()
    epilogues: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def total_block(self) -> int:
        return _product(self.block_factors)

    @property
    def total_thread(self) -> int:
        return _product(self.thread_factors)

    def describe(self) -> str:
        return "block=%s thread=%s" % (
            "x".join(map(str, self.block_factors)) or "1",
            "x".join(map(str, self.thread_factors)) or "1")


def _product(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


def _prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return sorted(factors, reverse=True)


def balance_factors(total: int, extents: Sequence[Optional[int]],
                    require_divisors: bool = False) -> List[int]:
    """Distribute ``total`` across dimensions (paper footnote 4).

    Dimensions of extent 1 are skipped. With ``require_divisors`` a prime is
    only placed on a dimension whose extent stays divisible; primes that fit
    nowhere are dropped (reducing the effective total).
    """
    factors = [1] * len(extents)
    usable = [d for d, extent in enumerate(extents) if extent != 1]
    if not usable:
        return factors
    for prime in _prime_factors(total):
        candidates = []
        for d in usable:
            if require_divisors:
                extent = extents[d]
                if extent is None or extent % (factors[d] * prime) != 0:
                    continue
            candidates.append(d)
        if not candidates:
            continue
        best = min(candidates, key=lambda d: (factors[d], d))
        factors[best] *= prime
    return factors


# -- structure helpers -----------------------------------------------------------


def block_parallels(wrapper: Operation,
                    include_epilogues: bool = True) -> List[Operation]:
    """The block-level parallel loops directly inside a gpu_wrapper."""
    found = [op for op in wrapper.body_block().ops
             if scf.is_gpu_blocks(op)]
    if not include_epilogues:
        found = [op for op in found if not op.attr("coarsen.epilogue")]
    return found


def block_parallels_in_region(region) -> List[Operation]:
    """Block-level parallel loops at the top level of a region (used for
    the regions of a polygeist.alternatives op)."""
    return [op for op in region.entry.ops if scf.is_gpu_blocks(op)]


def thread_parallel(block_parallel: Operation) -> Operation:
    """The thread-level parallel nested in a block loop."""
    stack = [block_parallel.body_block()]
    while stack:
        block = stack.pop()
        for op in block.ops:
            if scf.is_gpu_threads(op):
                return op
            for region in op.regions:
                stack.extend(region.blocks)
    raise CoarsenError("no thread-level parallel found in block loop")


def parallel_extents(parallel: Operation) -> List[Optional[int]]:
    """Static extents per dimension (None when dynamic)."""
    extents: List[Optional[int]] = []
    for lb, ub in zip(scf.parallel_lower_bounds(parallel),
                      scf.parallel_upper_bounds(parallel)):
        lb_const = arith.constant_value(lb)
        ub_const = arith.constant_value(ub)
        if lb_const is None or ub_const is None:
            extents.append(None)
        else:
            extents.append(ub_const - lb_const)
    return extents


# -- coarsening entry points --------------------------------------------------------


def thread_coarsen(wrapper: Operation,
                   factors: Sequence[int]) -> CoarsenResult:
    """Apply per-dimension thread coarsening to every block loop (main and
    epilogues) of a gpu_wrapper."""
    result = CoarsenResult(thread_factors=tuple(factors))
    for block_loop in block_parallels(wrapper):
        threads = thread_parallel(block_loop)
        current = threads
        for dim, factor in enumerate(factors):
            if factor == 1:
                continue
            if dim >= scf.parallel_num_dims(current):
                raise CoarsenError(
                    "thread dimension %d out of range" % dim)
            try:
                current, _ = unroll_and_interleave(current, dim, factor,
                                                   style="thread")
            except IllegalUnroll as error:
                raise CoarsenError("thread coarsening failed: %s" % error)
    return result


def block_coarsen(wrapper: Operation,
                  factors: Sequence[int]) -> CoarsenResult:
    """Apply per-dimension block coarsening to the main block loop."""
    result = CoarsenResult(block_factors=tuple(factors))
    mains = block_parallels(wrapper, include_epilogues=False)
    if len(mains) != 1:
        raise CoarsenError("expected exactly one main block loop, found %d"
                           % len(mains))
    current = mains[0]
    for dim, factor in enumerate(factors):
        if factor == 1:
            continue
        if dim >= scf.parallel_num_dims(current):
            raise CoarsenError("block dimension %d out of range" % dim)
        try:
            current, epilogue = unroll_and_interleave(current, dim, factor,
                                                      style="block")
        except IllegalUnroll as error:
            raise CoarsenError("block coarsening failed: %s" % error)
        if epilogue is not None:
            result.epilogues += 1
    return result


def coarsen_wrapper(wrapper: Operation,
                    block_factors: Optional[Sequence[int]] = None,
                    thread_factors: Optional[Sequence[int]] = None,
                    block_total: Optional[int] = None,
                    thread_total: Optional[int] = None) -> CoarsenResult:
    """Combined coarsening of one gpu_wrapper.

    Either explicit per-dimension factors or a *total* factor (balanced
    across dimensions, footnote 4) may be given for each level. Block
    coarsening runs first (outer loop), then thread coarsening is applied
    inside every resulting block loop including epilogues.
    """
    if wrapper.name != polygeist.GPU_WRAPPER:
        raise CoarsenError("coarsen_wrapper expects a polygeist.gpu_wrapper")
    mains = block_parallels(wrapper, include_epilogues=False)
    if len(mains) != 1:
        raise CoarsenError("wrapper must hold exactly one block loop")
    result = CoarsenResult()

    if block_total is not None:
        if block_factors is not None:
            raise CoarsenError("give block_factors or block_total, not both")
        extents = parallel_extents(mains[0])
        block_factors = balance_factors(block_total, extents)
        if _product(block_factors) != block_total:
            result.notes.append(
                "block total %d reduced to %d by dimension limits" %
                (block_total, _product(block_factors)))
    if thread_total is not None:
        if thread_factors is not None:
            raise CoarsenError(
                "give thread_factors or thread_total, not both")
        extents = parallel_extents(thread_parallel(mains[0]))
        thread_factors = balance_factors(thread_total, extents,
                                         require_divisors=True)
        if _product(thread_factors) != thread_total:
            result.notes.append(
                "thread total %d reduced to %d by divisibility" %
                (thread_total, _product(thread_factors)))

    if block_factors and _product(block_factors) > 1:
        block_result = block_coarsen(wrapper, block_factors)
        result.block_factors = block_result.block_factors
        result.epilogues = block_result.epilogues
    else:
        result.block_factors = tuple(block_factors or ())
    if thread_factors and _product(thread_factors) > 1:
        thread_result = thread_coarsen(wrapper, thread_factors)
        result.thread_factors = thread_result.thread_factors
    else:
        result.thread_factors = tuple(thread_factors or ())
    return result


# -- planning (lazy alternative materialization) ------------------------------


def _plan_unrolls(parallel_op: Operation, factors: Sequence[int],
                  style: str) -> int:
    """Mirror the per-dimension :func:`unroll_and_interleave` decision
    sequence of one coarsening level without building any IR.

    Reads only the *original* loop: the per-dimension bound checks consume
    value objects the eager transform carries over unchanged (each
    dimension is unrolled at most once, and an unroll only replaces the
    upper bound of its own dimension), and barrier-placement legality is
    invariant under the preceding uniform unrolls — so one check on the
    original loop decides every dimension. Raises exactly the errors the
    eager path raises, in the same order, and returns the number of
    epilogue loops the eager path would emit.
    """
    level = "block" if style == "block" else "thread"
    num_dims = scf.parallel_num_dims(parallel_op)
    lbs = scf.parallel_lower_bounds(parallel_op)
    ubs = scf.parallel_upper_bounds(parallel_op)
    steps = scf.parallel_steps(parallel_op)
    legality_checked = False
    epilogues = 0
    for dim, factor in enumerate(factors):
        if factor == 1:
            continue
        if dim >= num_dims:
            raise CoarsenError("%s dimension %d out of range" % (level, dim))
        if factor < 1:
            # unroll_and_interleave raises a plain ValueError here, which
            # the eager path lets propagate uncaught — mirror that
            raise ValueError("factor must be >= 1")
        if not legality_checked:
            reason = check_unroll_legality(
                parallel_op, trust_convergence=style.startswith("thread"))
            if reason is not None:
                raise CoarsenError("%s coarsening failed: %s"
                                   % (level, reason))
            legality_checked = True
        if arith.constant_value(lbs[dim]) != 0 or \
                arith.constant_value(steps[dim]) != 1:
            raise CoarsenError(
                "%s coarsening failed: only lb=0, step=1 parallel loops "
                "are supported" % level)
        ub_const = arith.constant_value(ubs[dim])
        if style == "thread":
            if ub_const is None:
                raise CoarsenError("thread coarsening failed: thread "
                                   "coarsening needs a constant extent")
            if ub_const % factor != 0:
                raise CoarsenError(
                    "thread coarsening failed: thread factor %d does not "
                    "divide extent %d" % (factor, ub_const))
        else:
            if ub_const is not None:
                if ub_const // factor == 0:
                    raise CoarsenError(
                        "block coarsening failed: block factor %d exceeds "
                        "grid extent %d" % (factor, ub_const))
                if ub_const % factor != 0:
                    epilogues += 1
            else:
                epilogues += 1
    return epilogues


def plan_coarsening(wrapper: Operation,
                    block_factors: Optional[Sequence[int]] = None,
                    thread_factors: Optional[Sequence[int]] = None,
                    block_total: Optional[int] = None,
                    thread_total: Optional[int] = None) -> CoarsenResult:
    """What :func:`coarsen_wrapper` *would* do, decided without a clone.

    Returns the same :class:`CoarsenResult` (factors, epilogue count,
    balancing notes) a real ``coarsen_wrapper(wrapper.clone({}), ...)``
    would return, and raises the same errors with the same messages, but
    mutates nothing. This is what lets alternative generation
    legality-check every candidate config before materializing a single
    clone (§VI: filter configs, then compile survivors).
    """
    if wrapper.name != polygeist.GPU_WRAPPER:
        raise CoarsenError("coarsen_wrapper expects a polygeist.gpu_wrapper")
    mains = block_parallels(wrapper, include_epilogues=False)
    if len(mains) != 1:
        raise CoarsenError("wrapper must hold exactly one block loop")
    main = mains[0]
    result = CoarsenResult()

    if block_total is not None:
        if block_factors is not None:
            raise CoarsenError("give block_factors or block_total, not both")
        extents = parallel_extents(main)
        block_factors = balance_factors(block_total, extents)
        if _product(block_factors) != block_total:
            result.notes.append(
                "block total %d reduced to %d by dimension limits" %
                (block_total, _product(block_factors)))
    if thread_total is not None:
        if thread_factors is not None:
            raise CoarsenError(
                "give thread_factors or thread_total, not both")
        extents = parallel_extents(thread_parallel(main))
        thread_factors = balance_factors(thread_total, extents,
                                         require_divisors=True)
        if _product(thread_factors) != thread_total:
            result.notes.append(
                "thread total %d reduced to %d by divisibility" %
                (thread_total, _product(thread_factors)))

    if block_factors and _product(block_factors) > 1:
        result.epilogues = _plan_unrolls(main, block_factors, "block")
        result.block_factors = tuple(block_factors)
    else:
        result.block_factors = tuple(block_factors or ())
    if thread_factors and _product(thread_factors) > 1:
        # the eager path coarsens threads inside the (by now
        # block-coarsened) main loop and its epilogues; the jammed main
        # thread loop keeps copy-0 bounds and the epilogues are clones,
        # so checking the original thread loop decides all of them
        _plan_unrolls(thread_parallel(main), thread_factors, "thread")
        result.thread_factors = tuple(thread_factors)
    else:
        result.thread_factors = tuple(thread_factors or ())
    return result
