"""Deterministic fault injection for the serving/tuning stack.

The robustness claim behind ``repro serve`` — no hang, no corrupt cache
entry ever served, no lost accepted job — is only worth making if it is
*tested against the failures it claims to survive*. This package turns
those failures into data: a seedable :class:`FaultPlan` ("on the Nth
call to site X, raise / kill the worker / truncate the bytes / sleep
past the deadline") installed process-wide or shipped to worker
processes via ``$REPRO_FAULT_PLAN``, fired at named injection points
(:data:`SITES`) threaded through :class:`~repro.engine.cache.TuningCache`
persistence, :class:`~repro.engine.scheduler.SweepScheduler` dispatch,
and the serve queue/dispatcher/ledger.

See ``docs/SERVE.md`` for the fault matrix and the chaos-campaign
invariants (``tests/test_chaos.py``).
"""

from .plan import (DIE_EXIT_CODE, FAULT_PLAN_ENV, SITE_KINDS, SITES,
                   FaultError, FaultPlan, FaultSpec, active_plan,
                   fault_point, install_plan, mark_worker_process,
                   maybe_fault, uninstall_plan)

__all__ = [
    "DIE_EXIT_CODE", "FAULT_PLAN_ENV", "FaultError", "FaultPlan",
    "FaultSpec", "SITES", "SITE_KINDS", "active_plan", "fault_point",
    "install_plan", "mark_worker_process", "maybe_fault",
    "uninstall_plan",
]
