"""Deterministic, seedable fault plans and their injection points.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers — "on the
Nth call to site X, do Y" — installed process-wide (or shipped to worker
processes through ``$REPRO_FAULT_PLAN``). Code under test declares named
**injection points** by calling :func:`maybe_fault`; when no plan is
installed that call is two attribute loads and a ``None`` check, so the
production hot paths pay nothing.

Determinism is the whole point: the same seed always produces the same
specs, each site keeps its own thread-safe call counter, and a spec
fires exactly once (on its configured call number). A chaos campaign is
therefore *replayable* — a failing seed is a bug report, not a flake.

Fault kinds (gated per site by :data:`SITE_KINDS` so an in-daemon site
can never be asked to kill the whole process):

* ``raise``    — raise :class:`FaultError` (an :class:`OSError`), the
  shape of a full disk / unreadable file / dead socket;
* ``truncate`` — site-specific data damage: the cache sites cut the
  entry file in half, simulating a torn write published by a crashed
  writer (the bytes that survive ``kill -9`` mid-``write``);
* ``die``      — ``os._exit``: the SIGKILL / OOM-kill shape, only legal
  inside scheduler worker processes;
* ``sleep``    — stall past a deadline to exercise timeout enforcement.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

logger = get_logger("faults")

#: environment variable carrying a JSON-encoded plan into worker processes
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: the named injection points threaded through the pipeline
SITES = (
    "engine.cache.dump",      # TuningCache._dump: persist one entry
    "engine.cache.load",      # TuningCache._load: read one entry
    "scheduler.worker",       # SweepScheduler worker/in-process dispatch
    "serve.queue.submit",     # JobQueue.submit: admission
    "serve.dispatch",         # TuneServer dispatcher: before execution
    "serve.ledger.append",    # JobLedger.append: one WAL record
)

#: which fault kinds are legal at which site — ``die`` is only legal
#: where the dying process is an isolated worker, never the daemon
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "engine.cache.dump": ("raise", "truncate", "sleep"),
    "engine.cache.load": ("raise", "truncate", "sleep"),
    "scheduler.worker": ("raise", "die", "sleep"),
    "serve.queue.submit": ("raise",),
    "serve.dispatch": ("raise", "sleep"),
    "serve.ledger.append": ("raise", "sleep"),
}

#: exit code used by ``die`` so a chaos harness can recognize its kills
DIE_EXIT_CODE = 86


class FaultError(OSError):
    """The injected exception; an :class:`OSError` so the sites'
    existing failure handling (cache dump errors, ledger append errors)
    treats it exactly like the real fault it stands in for."""

    injected = True


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: on the ``call``-th hit of ``site``, do ``kind``."""

    site: str
    call: int                 # 1-based call number at the site
    kind: str                 # "raise" | "truncate" | "die" | "sleep"
    seconds: float = 0.0      # sleep duration for kind == "sleep"

    def as_dict(self) -> Dict[str, object]:
        return {"site": self.site, "call": self.call, "kind": self.kind,
                "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(site=str(data["site"]), call=int(data["call"]),
                   kind=str(data["kind"]),
                   seconds=float(data.get("seconds", 0.0)))


class FaultPlan:
    """A set of :class:`FaultSpec` plus per-site call counters.

    Thread-safe; every process holds its own counters (a plan shipped to
    a worker process through the environment counts that worker's calls,
    which keeps campaigns deterministic per process).
    """

    def __init__(self, specs: Sequence[FaultSpec],
                 seed: Optional[int] = None):
        self.specs = list(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        #: specs that actually fired, in firing order
        self.fired: List[FaultSpec] = []
        self._by_site: Dict[str, Dict[int, FaultSpec]] = {}
        for spec in self.specs:
            if spec.site not in SITE_KINDS:
                raise ValueError("unknown fault site %r (have: %s)" %
                                 (spec.site, ", ".join(SITES)))
            if spec.kind not in SITE_KINDS[spec.site]:
                raise ValueError("fault kind %r not legal at site %r" %
                                 (spec.kind, spec.site))
            self._by_site.setdefault(spec.site, {})[spec.call] = spec

    # -- construction --------------------------------------------------------

    @classmethod
    def seeded(cls, seed: int, sites: Sequence[str] = SITES,
               faults: int = 8, max_call: int = 5,
               forbid: Iterable[str] = (),
               max_sleep: float = 0.2) -> "FaultPlan":
        """A deterministic random plan: same seed, same specs.

        ``forbid`` removes fault kinds globally (a thread-isolation
        campaign forbids ``die``; a latency-sensitive one forbids
        ``sleep``). Sites whose legal kinds are all forbidden are
        skipped.
        """
        rng = random.Random(seed)
        forbid = set(forbid)
        usable = [site for site in sites
                  if set(SITE_KINDS[site]) - forbid]
        if not usable:
            raise ValueError("every fault kind is forbidden")
        specs: List[FaultSpec] = []
        used = set()
        for _ in range(faults * 4):         # bounded retry on collisions
            if len(specs) >= faults:
                break
            site = rng.choice(usable)
            call = rng.randint(1, max_call)
            if (site, call) in used:
                continue
            used.add((site, call))
            kind = rng.choice([k for k in SITE_KINDS[site]
                               if k not in forbid])
            seconds = round(rng.uniform(0.01, max_sleep), 3) \
                if kind == "sleep" else 0.0
            specs.append(FaultSpec(site, call, kind, seconds))
        return cls(specs, seed=seed)

    # -- serialization (for $REPRO_FAULT_PLAN) -------------------------------

    def to_json(self) -> str:
        return json.dumps({"seed": self.seed,
                           "specs": [s.as_dict() for s in self.specs]},
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls([FaultSpec.from_dict(s) for s in data["specs"]],
                   seed=data.get("seed"))

    # -- firing --------------------------------------------------------------

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Count one hit of ``site``; return the spec that fires, if any."""
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            spec = self._by_site.get(site, {}).get(count)
            if spec is not None:
                self.fired.append(spec)
            return spec

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "specs": len(self.specs),
                "fired": [s.as_dict() for s in self.fired],
                "site_hits": dict(self._hits),
            }


# -- the installed plan ------------------------------------------------------

_active: Optional[FaultPlan] = None
#: memoized (raw env text, parsed plan) so workers parse JSON once
_env_plan: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
#: True only in sacrificial scheduler worker processes — the one place
#: a ``die`` fault is allowed to actually kill the process
_worker_process = False


def mark_worker_process() -> None:
    """Declare this process a sacrificial worker.

    :func:`maybe_fault` only honors ``die`` after this is called;
    anywhere else (the daemon, a test runner) ``die`` is demoted to
    ``raise`` so a mis-scoped plan cannot take down the wrong process.
    """
    global _worker_process
    _worker_process = True


def install_plan(plan: FaultPlan, env: bool = False) -> FaultPlan:
    """Install ``plan`` process-wide; ``env=True`` also exports it to
    ``$REPRO_FAULT_PLAN`` so scheduler worker processes inherit it."""
    global _active
    _active = plan
    if env:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
    return plan


def uninstall_plan() -> None:
    global _active
    _active = None
    os.environ.pop(FAULT_PLAN_ENV, None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, falling back to ``$REPRO_FAULT_PLAN``."""
    if _active is not None:
        return _active
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    global _env_plan
    if _env_plan[0] != raw:
        try:
            _env_plan = (raw, FaultPlan.from_json(raw))
        except (ValueError, KeyError, TypeError):
            logger.warning("ignoring malformed %s", FAULT_PLAN_ENV)
            _env_plan = (raw, None)
    return _env_plan[1]


def fault_point(site: str) -> Optional[FaultSpec]:
    """Count one hit of ``site`` against the active plan (if any).

    Returns the spec that fires without acting on it; most sites want
    :func:`maybe_fault` instead.
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.fire(site)
    if spec is None:
        return None
    obs_metrics.inc("faults.injected")
    obs_metrics.inc("faults.%s" % site)
    logger.warning("injecting fault at %s (call %d): %s", site,
                   spec.call, spec.kind)
    return spec


def maybe_fault(site: str) -> Optional[FaultSpec]:
    """Fire the active plan at ``site`` and act on the generic kinds.

    ``raise`` raises :class:`FaultError`, ``die`` exits the process with
    :data:`DIE_EXIT_CODE`, ``sleep`` blocks then returns ``None``.
    Site-specific kinds (``truncate``) are returned for the caller to
    interpret. No plan installed → ``None``, at no measurable cost.
    """
    spec = fault_point(site)
    if spec is None:
        return None
    if spec.kind == "raise":
        raise FaultError("injected fault at %s (call %d)" %
                         (site, spec.call))
    if spec.kind == "die":
        if _worker_process:
            os._exit(DIE_EXIT_CODE)
        raise FaultError("injected fault at %s (call %d): die demoted "
                         "to raise outside a worker process" %
                         (site, spec.call))
    if spec.kind == "sleep":
        time.sleep(spec.seconds)
        return None
    return spec
