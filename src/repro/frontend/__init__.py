"""CUDA-C-subset frontend (the Polygeist analog).

Pipeline: :mod:`preprocessor` (``#define`` expansion) → :mod:`lexer` →
:mod:`cparser` (AST) → :mod:`codegen` (IR with codegen-time SSA
construction). Kernel launches — from host code or from the Python runtime —
are *inlined* into the host IR as ``polygeist.gpu_wrapper`` regions holding
nested ``scf.parallel`` loops, exactly as in Fig. 5 of the paper.
"""

from .c_ast import FunctionDef, TranslationUnit
from .codegen import CodegenError, ModuleGenerator
from .cparser import CParseError, parse_translation_unit
from .lexer import LexError, tokenize
from .preprocessor import preprocess

__all__ = [
    "CParseError", "CodegenError", "FunctionDef", "LexError",
    "ModuleGenerator", "TranslationUnit", "parse_translation_unit",
    "preprocess", "tokenize",
]
