"""A miniature C preprocessor.

Supports what Rodinia-style CUDA sources actually use: object-like and
function-like ``#define``, ``#undef``, ``#ifdef``/``#ifndef``/``#else``/
``#endif``, line continuations, and ``#include`` (ignored — the runtime
provides the CUDA builtins natively). This mirrors the paper's observation
(§VII-D1) that preprocessor behaviour is a real part of the CUDA-vs-HIP
translation story.
"""

from __future__ import annotations

import logging
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

logger = logging.getLogger(__name__)

_ID = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class PreprocessorError(ValueError):
    pass


@dataclass
class Macro:
    name: str
    body: str
    params: Optional[List[str]] = None  # None => object-like

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


def _split_args(text: str, start: int):
    """Parse a macro argument list starting at ``text[start] == '('``.

    Returns (args, position after the closing paren).
    """
    assert text[start] == "("
    depth = 0
    args: List[str] = []
    current = []
    i = start
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
            if depth > 1:
                current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args, i + 1
            current.append(ch)
        elif ch == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    raise PreprocessorError("unterminated macro argument list")


def _expand(text: str, macros: Dict[str, Macro], depth: int = 0) -> str:
    if depth > 32:
        raise PreprocessorError("macro expansion too deep")
    out = []
    i = 0
    n = len(text)
    while i < n:
        match = _ID.match(text, i)
        if not match:
            # skip string literals wholesale
            if text[i] == '"':
                end = i + 1
                while end < n and text[end] != '"':
                    end += 2 if text[end] == "\\" else 1
                out.append(text[i:end + 1])
                i = end + 1
                continue
            out.append(text[i])
            i += 1
            continue
        name = match.group()
        i = match.end()
        macro = macros.get(name)
        if macro is None:
            out.append(name)
            continue
        if macro.is_function_like:
            j = i
            while j < n and text[j] in " \t":
                j += 1
            if j >= n or text[j] != "(":
                out.append(name)
                continue
            args, i = _split_args(text, j)
            if len(args) == 1 and args[0] == "" and not macro.params:
                args = []
            if len(args) != len(macro.params):
                raise PreprocessorError(
                    "macro %s expects %d args, got %d" %
                    (name, len(macro.params), len(args)))
            body = macro.body
            expanded_args = [_expand(a, macros, depth + 1) for a in args]
            substituted = []
            k = 0
            while k < len(body):
                m2 = _ID.match(body, k)
                if m2:
                    word = m2.group()
                    if word in macro.params:
                        substituted.append(
                            "(%s)" % expanded_args[macro.params.index(word)])
                    else:
                        substituted.append(word)
                    k = m2.end()
                else:
                    substituted.append(body[k])
                    k += 1
            out.append(_expand("".join(substituted),
                               _without(macros, name), depth + 1))
        else:
            out.append(_expand(macro.body, _without(macros, name),
                               depth + 1))
    return "".join(out)


def _without(macros: Dict[str, Macro], name: str) -> Dict[str, Macro]:
    reduced = dict(macros)
    reduced.pop(name, None)
    return reduced


def preprocess(source: str,
               defines: Optional[Dict[str, object]] = None) -> str:
    """Expand preprocessor directives; returns plain C text.

    ``defines`` adds predefined object-like macros (like ``-D`` flags).
    """
    macros: Dict[str, Macro] = {}
    for key, value in (defines or {}).items():
        macros[key] = Macro(key, str(value))

    # splice line continuations
    source = source.replace("\\\n", " ")
    output: List[str] = []
    #: stack of booleans: is the current #if region active?
    active_stack: List[bool] = []

    def active() -> bool:
        return all(active_stack)

    for raw_line in source.split("\n"):
        stripped = raw_line.strip()
        if stripped.startswith("#"):
            directive = stripped[1:].strip()
            if directive.startswith("include"):
                pass  # headers are provided natively
            elif directive.startswith("pragma"):
                pass
            elif directive.startswith("ifdef"):
                name = directive[len("ifdef"):].strip()
                active_stack.append(name in macros)
            elif directive.startswith("ifndef"):
                name = directive[len("ifndef"):].strip()
                active_stack.append(name not in macros)
            elif directive.startswith("if "):
                condition = directive[3:].strip()
                expanded = _expand(condition, macros)
                expanded = re.sub(
                    r"defined\s*\(\s*(\w+)\s*\)",
                    lambda m: "1" if m.group(1) in macros else "0", expanded)
                try:
                    value = bool(eval(expanded, {"__builtins__": {}}, {}))
                except (SyntaxError, NameError, TypeError, ValueError,
                        ZeroDivisionError, AttributeError) as error:
                    # C conditions that are not valid Python (unexpanded
                    # identifiers, suffixed literals, …) count as false,
                    # like an undefined macro in a real preprocessor —
                    # but anything else (KeyboardInterrupt, RecursionError,
                    # MemoryError) must propagate rather than silently
                    # disable a source region
                    logger.debug("skipping #if %r: condition did not "
                                 "evaluate (%s)", condition, error)
                    value = False
                active_stack.append(value)
            elif directive.startswith("else"):
                if not active_stack:
                    raise PreprocessorError("#else without #if")
                active_stack[-1] = not active_stack[-1]
            elif directive.startswith("endif"):
                if not active_stack:
                    raise PreprocessorError("#endif without #if")
                active_stack.pop()
            elif directive.startswith("undef"):
                if active():
                    macros.pop(directive[len("undef"):].strip(), None)
            elif directive.startswith("define"):
                if active():
                    rest = directive[len("define"):].strip()
                    match = _ID.match(rest)
                    if not match:
                        raise PreprocessorError(
                            "malformed #define: %r" % stripped)
                    name = match.group()
                    after = rest[match.end():]
                    if after.startswith("("):
                        params_text, end = _split_args(after, 0)
                        params = [p for p in params_text if p]
                        body = after[end:].strip()
                        macros[name] = Macro(name, body, params)
                    else:
                        macros[name] = Macro(name, after.strip())
            else:
                raise PreprocessorError("unsupported directive: %r" %
                                        stripped)
            output.append("")  # keep line numbers stable
            continue
        output.append(_expand(raw_line, macros) if active() else "")
    return "\n".join(output)
