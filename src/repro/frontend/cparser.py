"""Recursive-descent parser for the CUDA C subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import c_ast as ast
from .lexer import Token, tokenize
from .preprocessor import preprocess

#: binary operator precedence (higher binds tighter)
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

_TYPE_KEYWORDS = {"void", "int", "unsigned", "signed", "long", "short",
                  "char", "float", "double", "bool", "size_t", "dim3"}
_QUALIFIER_KEYWORDS = {"const", "static", "extern", "volatile", "restrict",
                       "inline", "__restrict__", "__forceinline__",
                       "__host__"}
_CUDA_SPACE_KEYWORDS = {"__global__", "__device__", "__shared__",
                        "__constant__"}


class CParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__("%s at line %d (near %r)" %
                         (message, token.line, token.text))


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind != "string"

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise CParseError("expected %r" % text, self.peek())
        return self.advance()

    def at_type(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind == "keyword" and (
            token.text in _TYPE_KEYWORDS or
            token.text in _QUALIFIER_KEYWORDS or
            token.text in _CUDA_SPACE_KEYWORDS)

    # -- types -----------------------------------------------------------------

    def parse_qualifiers(self) -> List[str]:
        quals = []
        while True:
            text = self.peek().text
            if text in _QUALIFIER_KEYWORDS or text in _CUDA_SPACE_KEYWORDS:
                quals.append(text)
                self.advance()
            else:
                return quals

    def parse_base_type(self) -> ast.CType:
        const = False
        words = []
        while True:
            text = self.peek().text
            if text == "const":
                const = True
                self.advance()
            elif text in _QUALIFIER_KEYWORDS:
                self.advance()
            elif text in _TYPE_KEYWORDS:
                words.append(text)
                self.advance()
            else:
                break
        if not words:
            raise CParseError("expected a type", self.peek())
        base = _normalize_base(words)
        return ast.CType(base, const=const)

    def parse_pointers(self, base: ast.CType) -> ast.CType:
        pointer = 0
        while self.check("*"):
            self.advance()
            # const / __restrict__ after the star
            while self.peek().text in _QUALIFIER_KEYWORDS | {"const"}:
                self.advance()
            pointer += 1
        if pointer:
            return ast.CType(base.base, base.pointer + pointer, (),
                             base.const)
        return base

    # -- top level ----------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind != "eof":
            if self.accept(";"):
                continue
            quals = self.parse_qualifiers()
            base = self.parse_base_type()
            declarator_type = self.parse_pointers(base)
            name_token = self.peek()
            if name_token.kind not in ("id", "keyword"):
                raise CParseError("expected a declarator", name_token)
            name = self.advance().text
            if self.check("("):
                function = self.parse_function_rest(
                    name, declarator_type, tuple(quals))
                if function is not None:
                    unit.functions[name] = function
            else:
                decls = self.parse_global_decl_rest(name, declarator_type)
                device = any(q in ("__device__", "__constant__")
                             for q in quals)
                for decl in decls:
                    decl.constant = "__constant__" in quals
                    unit.globals.append(ast.GlobalDecl(decl, device))
        return unit

    def parse_function_rest(self, name: str, return_type: ast.CType,
                            qualifiers: Tuple[str, ...]
                            ) -> Optional[ast.FunctionDef]:
        self.expect("(")
        params: List[Tuple[str, ast.CType]] = []
        if not self.check(")"):
            while True:
                if self.accept("void") and self.check(")"):
                    break
                self.parse_qualifiers()
                base = self.parse_base_type()
                ptype = self.parse_pointers(base)
                pname = ""
                if self.peek().kind == "id":
                    pname = self.advance().text
                dims = []
                while self.accept("["):
                    if not self.check("]"):
                        dims.append(self.parse_expression())
                    self.expect("]")
                if dims:
                    # array parameters decay to pointers
                    ptype = ast.CType(ptype.base, ptype.pointer + 1, (),
                                      ptype.const)
                params.append((pname, ptype))
                if not self.accept(","):
                    break
        self.expect(")")
        if self.accept(";"):
            return None  # forward declaration
        body = self.parse_block()
        return ast.FunctionDef(name, return_type, params, body, qualifiers)

    def parse_global_decl_rest(self, first_name: str,
                               first_type: ast.CType) -> List[ast.VarDecl]:
        decls = [self.parse_declarator_rest(first_name, first_type)]
        while self.accept(","):
            type_ = self.parse_pointers(
                ast.CType(first_type.base, 0, (), first_type.const))
            name = self.advance().text
            decls.append(self.parse_declarator_rest(name, type_))
        self.expect(";")
        return decls

    def parse_declarator_rest(self, name: str,
                              type_: ast.CType) -> ast.VarDecl:
        if type_.base == "dim3" and self.check("("):
            # constructor syntax: dim3 g(x, y);
            self.advance()
            args: List[ast.Expr] = []
            if not self.check(")"):
                args.append(self.parse_assignment())
                while self.accept(","):
                    args.append(self.parse_assignment())
            self.expect(")")
            return ast.VarDecl(name, type_, ast.Call("dim3", args))
        dims = []
        while self.accept("["):
            dims.append(self.parse_conditional())
            self.expect("]")
        if dims:
            type_ = ast.CType(type_.base, type_.pointer, tuple(dims),
                              type_.const)
        init = None
        if self.accept("="):
            init = self.parse_assignment()
        return ast.VarDecl(name, type_, init)

    # -- statements ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        self.expect("{")
        stmts: List[ast.Stmt] = []
        while not self.check("}"):
            stmts.append(self.parse_statement())
        self.expect("}")
        return ast.Block(stmts)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.text == "{":
            return self.parse_block()
        if token.text == "if":
            return self.parse_if()
        if token.text == "for":
            return self.parse_for()
        if token.text == "while":
            return self.parse_while()
        if token.text == "do":
            return self.parse_do_while()
        if token.text == "return":
            self.advance()
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(value)
        if token.text == "break":
            self.advance()
            self.expect(";")
            return ast.Break()
        if token.text == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue()
        if token.text == ";":
            self.advance()
            return ast.Block([])
        if self.at_type():
            return self.parse_declaration()
        # kernel launch?
        if token.kind == "id" and self.peek(1).text == "<<<":
            return self.parse_launch()
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(expr)

    def parse_declaration(self) -> ast.DeclStmt:
        quals = self.parse_qualifiers()
        base = self.parse_base_type()
        shared = "__shared__" in quals
        decls: List[ast.VarDecl] = []
        while True:
            type_ = self.parse_pointers(base)
            name_token = self.peek()
            if name_token.kind != "id":
                raise CParseError("expected a variable name", name_token)
            name = self.advance().text
            decl = self.parse_declarator_rest(name, type_)
            decl.shared = shared
            decls.append(decl)
            if not self.accept(","):
                break
        self.expect(";")
        return ast.DeclStmt(decls)

    def parse_if(self) -> ast.If:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self._statement_as_block()
        else_body = None
        if self.accept("else"):
            else_body = self._statement_as_block()
        return ast.If(cond, then_body, else_body)

    def _statement_as_block(self) -> ast.Block:
        stmt = self.parse_statement()
        return stmt if isinstance(stmt, ast.Block) else ast.Block([stmt])

    def parse_for(self) -> ast.For:
        self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.check(";"):
            if self.at_type():
                init = self.parse_declaration()  # consumes ';'
            else:
                init = ast.ExprStmt(self.parse_expression())
                self.expect(";")
        else:
            self.expect(";")
        cond = None if self.check(";") else self.parse_expression()
        self.expect(";")
        inc = None if self.check(")") else self.parse_expression()
        self.expect(")")
        return ast.For(init, cond, inc, self._statement_as_block())

    def parse_while(self) -> ast.While:
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        return ast.While(cond, self._statement_as_block())

    def parse_do_while(self) -> ast.DoWhile:
        self.expect("do")
        body = self._statement_as_block()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(body, cond)

    def parse_launch(self) -> ast.KernelLaunch:
        name = self.advance().text
        self.expect("<<<")
        grid = self.parse_assignment()
        self.expect(",")
        block = self.parse_assignment()
        shmem = None
        if self.accept(","):
            shmem = self.parse_assignment()
            if self.accept(","):
                self.parse_assignment()  # stream argument, ignored
        self.expect(">>>")
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.check(")"):
            args.append(self.parse_assignment())
            while self.accept(","):
                args.append(self.parse_assignment())
        self.expect(")")
        self.expect(";")
        return ast.KernelLaunch(name, grid, block, args, shmem)

    # -- expressions -------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        if self.check(","):
            exprs = [expr]
            while self.accept(","):
                exprs.append(self.parse_assignment())
            return ast.Comma(exprs)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(token.text, lhs, rhs)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            true_value = self.parse_assignment()
            self.expect(":")
            false_value = self.parse_conditional()
            return ast.Ternary(cond, true_value, false_value)
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.peek()
            precedence = _BINARY_PRECEDENCE.get(token.text, 0) \
                if token.kind == "op" else 0
            if precedence < min_precedence:
                return lhs
            self.advance()
            rhs = self.parse_binary(precedence + 1)
            lhs = ast.BinOp(token.text, lhs, rhs)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op":
            if token.text in ("-", "+", "!", "~"):
                self.advance()
                return ast.UnOp(token.text, self.parse_unary())
            if token.text in ("++", "--"):
                self.advance()
                return ast.UnOp(token.text, self.parse_unary())
            if token.text == "*":
                self.advance()
                return ast.Deref(self.parse_unary())
            if token.text == "&":
                self.advance()
                return ast.AddressOf(self.parse_unary())
            if token.text == "(" and self.at_type(1):
                self.advance()
                base = self.parse_base_type()
                type_ = self.parse_pointers(base)
                self.expect(")")
                return ast.Cast(type_, self.parse_unary())
        if token.text == "sizeof":
            self.advance()
            self.expect("(")
            if self.at_type():
                base = self.parse_base_type()
                type_ = self.parse_pointers(base)
                size = _sizeof(type_)
            else:
                self.parse_expression()
                size = 4
            self.expect(")")
            return ast.IntLit(size)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr, index)
            elif token.text == "." or token.text == "->":
                self.advance()
                member = self.advance().text
                expr = ast.Member(expr, member)
            elif token.text in ("++", "--"):
                self.advance()
                expr = ast.UnOp(token.text, expr, postfix=True)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int" or token.kind == "char":
            self.advance()
            return ast.IntLit(int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(float(token.value), token.is_f32)
        if token.text == "true":
            self.advance()
            return ast.IntLit(1)
        if token.text == "false":
            self.advance()
            return ast.IntLit(0)
        if token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind == "id" or token.text == "dim3":
            name = self.advance().text
            if self.check("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.check(")"):
                    args.append(self.parse_assignment())
                    while self.accept(","):
                        args.append(self.parse_assignment())
                self.expect(")")
                return ast.Call(name, args)
            return ast.Ident(name)
        if token.kind == "string":
            self.advance()
            return ast.IntLit(0)  # strings only appear in ignored printf()s
        raise CParseError("unexpected token in expression", token)


def _normalize_base(words: List[str]) -> str:
    if "double" in words:
        return "double"
    if "float" in words:
        return "float"
    if "bool" in words:
        return "bool"
    if "void" in words:
        return "void"
    if "dim3" in words:
        return "dim3"
    if "char" in words:
        return "char"
    if "size_t" in words or "long" in words:
        return "long"
    if "unsigned" in words:
        return "uint"
    return "int"


def _sizeof(type_: ast.CType) -> int:
    if type_.is_pointer:
        return 8
    return {"float": 4, "double": 8, "int": 4, "uint": 4, "long": 8,
            "bool": 1, "char": 1}.get(type_.base, 4)


def parse_translation_unit(source: str, defines=None) -> ast.TranslationUnit:
    """Preprocess, tokenize, and parse a CUDA source file."""
    from ..obs import tracer as obs_tracer
    with obs_tracer.span("frontend.parse", category="frontend",
                         bytes=len(source)):
        with obs_tracer.span("frontend.preprocess", category="frontend"):
            text = preprocess(source, defines)
        with obs_tracer.span("frontend.tokenize", category="frontend"):
            tokens = tokenize(text)
        with obs_tracer.span("frontend.ast", category="frontend"):
            return Parser(tokens).parse_translation_unit()
