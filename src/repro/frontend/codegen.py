"""AST → IR code generation with codegen-time SSA construction.

C's mutable variables become SSA values directly: the generator tracks the
current value of every scalar variable and introduces ``scf.if`` results,
``scf.for`` iteration arguments, and ``scf.while`` carried values at control
flow joins. Kernel launches are inlined into host IR as
``polygeist.gpu_wrapper`` + nested ``scf.parallel`` regions with
``polygeist.barrier`` for ``__syncthreads`` — the paper's representation
(Fig. 2/5).

Launch wrappers are specialized on the *block* shape (compile-time constants,
as in a real CUDA launch expression) while grid dimensions stay dynamic SSA
arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..dialects import arith, func, math as math_d, memref, polygeist, scf
from ..ir import (Builder, DYNAMIC, F32, F64, I1, INDEX, FloatType,
                  FunctionType, IndexType, IntegerType, MemRefType, Module,
                  Operation, Type, Value)
from . import c_ast as ast


class CodegenError(ValueError):
    pass


# -- values ------------------------------------------------------------------


@dataclass
class RValue:
    """A scalar SSA value with its C type."""
    value: Value
    ctype: ast.CType


@dataclass
class PointerRV:
    """A pointer: a memref base plus a flat element offset."""
    base: Value            # memref<?xT> (or statically shaped)
    offset: Value          # index
    ctype: ast.CType       # pointer type


@dataclass
class ArrayRV:
    """A (possibly multi-dimensional) array bound to a memref."""
    ref: Value
    ctype: ast.CType


@dataclass
class Dim3RV:
    """A host-side dim3 value (x, y, z index values)."""
    dims: Tuple[Value, Value, Value]


Binding = Union[RValue, PointerRV, ArrayRV, Dim3RV]


def ir_scalar_type(ctype: ast.CType) -> Type:
    """Map a scalar C type to the IR type (ints become ``index``)."""
    if ctype.base == "float":
        return F32
    if ctype.base == "double":
        return F64
    if ctype.base == "bool":
        return I1
    if ctype.base in ("int", "uint", "long", "char"):
        return INDEX
    raise CodegenError("type %s has no scalar IR mapping" % ctype)


def ir_element_type(ctype: ast.CType) -> Type:
    """Storage type of array/buffer elements, with true C widths.

    Scalar *values* use ``index`` for all C integers (see
    :func:`ir_scalar_type`), but kernel-internal storage keeps C sizes so
    shared-memory byte accounting matches real CUDA (e.g. nw's 2180 bytes
    per block). Loads/stores insert the index casts.
    """
    from ..ir import I8, I32, I64
    base = ctype.base
    if base in ("int", "uint"):
        return I32
    if base == "long":
        return I64
    if base == "char":
        return I8
    return ir_scalar_type(ctype)


def ir_param_type(ctype: ast.CType) -> Type:
    if ctype.is_pointer:
        # host-visible buffers stay index-typed for numpy interop
        return MemRefType((DYNAMIC,), ir_scalar_type(ctype.element_type()))
    return ir_scalar_type(ctype)


# -- AST analyses ----------------------------------------------------------------


def const_eval(expr: ast.Expr) -> Optional[int]:
    """Evaluate an integer constant expression at the AST level, or None."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.UnOp) and not expr.postfix:
        value = const_eval(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "!":
            return int(not value)
        if expr.op == "~":
            return ~value
        return None
    if isinstance(expr, ast.BinOp):
        lhs, rhs = const_eval(expr.lhs), const_eval(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: int(lhs / rhs) if rhs else None,
                "%": lambda: lhs - int(lhs / rhs) * rhs if rhs else None,
                "<<": lambda: lhs << rhs, ">>": lambda: lhs >> rhs,
                "&": lambda: lhs & rhs, "|": lambda: lhs | rhs,
                "^": lambda: lhs ^ rhs,
                "<": lambda: int(lhs < rhs), ">": lambda: int(lhs > rhs),
                "<=": lambda: int(lhs <= rhs), ">=": lambda: int(lhs >= rhs),
                "==": lambda: int(lhs == rhs), "!=": lambda: int(lhs != rhs),
            }[expr.op]()
        except KeyError:
            return None
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond)
        if cond is None:
            return None
        return const_eval(expr.true_value if cond else expr.false_value)
    if isinstance(expr, ast.Cast):
        return const_eval(expr.expr)
    return None


def assigned_names(node, declared: Optional[Set[str]] = None) -> Set[str]:
    """Names assigned by ``node``, excluding ones it declares itself."""
    if declared is None:
        declared = set()
    names: Set[str] = set()

    def visit_expr(expr):
        if isinstance(expr, ast.Assign):
            if isinstance(expr.target, ast.Ident):
                if expr.target.name not in declared:
                    names.add(expr.target.name)
            else:
                visit_expr(expr.target)
            visit_expr(expr.value)
        elif isinstance(expr, ast.UnOp):
            if expr.op in ("++", "--") and isinstance(expr.operand,
                                                      ast.Ident):
                if expr.operand.name not in declared:
                    names.add(expr.operand.name)
            else:
                visit_expr(expr.operand)
        elif isinstance(expr, ast.BinOp):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, ast.Ternary):
            visit_expr(expr.cond)
            visit_expr(expr.true_value)
            visit_expr(expr.false_value)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, (ast.Index,)):
            visit_expr(expr.base)
            visit_expr(expr.index)
        elif isinstance(expr, ast.Member):
            visit_expr(expr.base)
        elif isinstance(expr, (ast.Cast,)):
            visit_expr(expr.expr)
        elif isinstance(expr, (ast.AddressOf, ast.Deref)):
            visit_expr(expr.expr)
        elif isinstance(expr, ast.Comma):
            for sub in expr.exprs:
                visit_expr(sub)

    def visit_stmt(stmt, local_declared):
        if isinstance(stmt, ast.Block):
            inner = set(local_declared)
            for child in stmt.stmts:
                visit_stmt(child, inner)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    visit_expr(decl.init)
                local_declared.add(decl.name)
        elif isinstance(stmt, ast.ExprStmt):
            visit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            visit_expr(stmt.cond)
            visit_stmt(stmt.then_body, set(local_declared))
            if stmt.else_body is not None:
                visit_stmt(stmt.else_body, set(local_declared))
        elif isinstance(stmt, ast.For):
            inner = set(local_declared)
            if stmt.init is not None:
                visit_stmt(stmt.init, inner)
            if stmt.cond is not None:
                visit_expr(stmt.cond)
            if stmt.inc is not None:
                visit_expr(stmt.inc)
            visit_stmt(stmt.body, inner)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            visit_expr(stmt.cond)
            visit_stmt(stmt.body, set(local_declared))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                visit_expr(stmt.value)
        elif isinstance(stmt, ast.KernelLaunch):
            for arg in stmt.args:
                visit_expr(arg)

    # outer-level names assigned should respect `declared`
    def visit_expr_decl_aware(expr):
        visit_expr(expr)

    saved = names

    def collect(stmt):
        visit_stmt(stmt, set(declared))

    collect(node) if isinstance(node, ast.Stmt) else visit_expr(node)
    return {n for n in saved if n not in declared}


# -- math / CUDA builtins ---------------------------------------------------------

#: name -> (ir op name, arity, forced precision or None)
_MATH_BUILTINS = {
    "sqrtf": ("math.sqrt", 1, F32), "sqrt": ("math.sqrt", 1, F64),
    "rsqrtf": ("math.rsqrt", 1, F32), "rsqrt": ("math.rsqrt", 1, F64),
    "expf": ("math.exp", 1, F32), "exp": ("math.exp", 1, F64),
    "__expf": ("math.exp", 1, F32),
    "exp2f": ("math.exp2", 1, F32),
    "logf": ("math.log", 1, F32), "log": ("math.log", 1, F64),
    "__logf": ("math.log", 1, F32),
    "log2f": ("math.log2", 1, F32), "log10f": ("math.log10", 1, F32),
    "sinf": ("math.sin", 1, F32), "sin": ("math.sin", 1, F64),
    "cosf": ("math.cos", 1, F32), "cos": ("math.cos", 1, F64),
    "tanf": ("math.tan", 1, F32), "tanhf": ("math.tanh", 1, F32),
    "atanf": ("math.atan", 1, F32), "atan": ("math.atan", 1, F64),
    "fabsf": ("math.absf", 1, F32), "fabs": ("math.absf", 1, F64),
    "absf": ("math.absf", 1, F32),
    "floorf": ("math.floor", 1, F32), "floor": ("math.floor", 1, F64),
    "ceilf": ("math.ceil", 1, F32), "ceil": ("math.ceil", 1, F64),
    "powf": ("math.powf", 2, F32), "pow": ("math.powf", 2, F64),
    "__powf": ("math.powf", 2, F32),
    "atan2f": ("math.atan2", 2, F32), "atan2": ("math.atan2", 2, F64),
    "fmodf": ("math.fmod", 2, F32), "fmod": ("math.fmod", 2, F64),
    "fminf": ("arith.minf", 2, F32), "fmaxf": ("arith.maxf", 2, F32),
    "fmin": ("arith.minf", 2, F64), "fmax": ("arith.maxf", 2, F64),
}

_IGNORED_CALLS = {"printf", "fprintf", "cudaDeviceSynchronize",
                  "cudaThreadSynchronize", "__syncwarp", "assert",
                  "cudaSetDevice", "free", "exit"}


class _KernelContext:
    """Thread/block position values while generating a kernel body."""

    def __init__(self, thread_ivs, block_ivs, block_dims, grid_dims,
                 block_builder: Builder):
        # each is a 3-tuple of index Values (padded with None / constants)
        self.thread_ivs = thread_ivs
        self.block_ivs = block_ivs
        self.block_dims = block_dims
        self.grid_dims = grid_dims
        #: insertion point between the block and thread parallel loops,
        #: where __shared__ allocations live
        self.block_builder = block_builder


class ModuleGenerator:
    """Generates a :class:`Module` from a parsed translation unit."""

    def __init__(self, unit: ast.TranslationUnit):
        from ..obs import tracer as obs_tracer
        self.unit = unit
        self.module = Module()
        self.module_builder = Builder(self.module.body)
        self._wrapper_cache: Dict[Tuple, str] = {}
        with obs_tracer.span("frontend.codegen.globals",
                             category="frontend"):
            self._emit_globals()

    # -- public API ------------------------------------------------------------

    def emit_host_function(self, name: str) -> Operation:
        """Generate IR for a host function (inlining any launches)."""
        definition = self.unit.functions.get(name)
        if definition is None:
            raise CodegenError("no function named %r" % name)
        if definition.is_kernel:
            raise CodegenError("%r is a kernel; use a launch wrapper" % name)
        return self._emit_function(definition)

    def get_launch_wrapper(self, kernel_name: str, grid_rank: int,
                           block_shape: Tuple[int, ...]) -> str:
        """Get (or create) the launch wrapper for a kernel.

        The wrapper function has signature ``(grid dims..., kernel args...)``
        and contains the inlined kernel as a gpu_wrapper + parallel nest
        specialized to ``block_shape``.
        """
        key = (kernel_name, grid_rank, tuple(block_shape))
        if key in self._wrapper_cache:
            return self._wrapper_cache[key]
        kernel = self.unit.functions.get(kernel_name)
        if kernel is None or not kernel.is_kernel:
            raise CodegenError("no kernel named %r" % kernel_name)
        wrapper_name = "%s__g%db%s" % (
            kernel_name, grid_rank, "x".join(map(str, block_shape)))
        from ..obs import tracer as obs_tracer
        with obs_tracer.span("frontend.codegen", category="frontend",
                             kernel=kernel_name, wrapper=wrapper_name):
            self._emit_launch_wrapper(wrapper_name, kernel, grid_rank,
                                      tuple(block_shape))
        self._wrapper_cache[key] = wrapper_name
        return wrapper_name

    # -- globals ----------------------------------------------------------------

    def _emit_globals(self) -> None:
        for global_decl in self.unit.globals:
            decl = global_decl.decl
            dims = []
            for dim_expr in decl.type.array_dims:
                extent = const_eval(dim_expr)
                if extent is None:
                    raise CodegenError(
                        "global array %r needs constant dims" % decl.name)
                dims.append(extent)
            element = ir_element_type(decl.type.element_type())
            space = "constant" if decl.constant else "global"
            type_ = MemRefType(tuple(dims), element, space)
            memref.global_(self.module_builder, decl.name, type_,
                           constant=decl.constant)

    # -- function generation --------------------------------------------------------

    def _emit_function(self, definition: ast.FunctionDef) -> Operation:
        param_types = tuple(ir_param_type(t) for _, t in definition.params)
        result_types: Tuple[Type, ...] = ()
        if definition.return_type.base != "void":
            result_types = (ir_scalar_type(definition.return_type),)
        f = func.func(self.module_builder, definition.name,
                      FunctionType(param_types, result_types),
                      [n for n, _ in definition.params])
        builder = Builder(f.body_block())
        gen = _FunctionGenerator(self, builder, kernel_ctx=None)
        gen.push_scope()
        for (pname, ptype), arg in zip(definition.params,
                                       f.body_block().args):
            gen.bind_param(pname, ptype, arg)
        return_value = gen.gen_stmts(definition.body.stmts,
                                     allow_trailing_return=True)
        if result_types and return_value is None:
            raise CodegenError("function %r must end in a return" %
                               definition.name)
        func.return_(gen.builder,
                     [return_value.value] if return_value else [])
        return f

    def _emit_launch_wrapper(self, wrapper_name: str,
                             kernel: ast.FunctionDef, grid_rank: int,
                             block_shape: Tuple[int, ...]) -> Operation:
        param_types = [INDEX] * grid_rank + \
            [ir_param_type(t) for _, t in kernel.params]
        arg_names = ["g%s" % "xyz"[d] for d in range(grid_rank)] + \
            [n for n, _ in kernel.params]
        f = func.func(self.module_builder, wrapper_name,
                      FunctionType(tuple(param_types), ()), arg_names,
                      kernel=True)
        builder = Builder(f.body_block())
        grid_values = list(f.body_block().args[:grid_rank])
        arg_bindings: List[Binding] = []
        gen = _FunctionGenerator(self, builder, kernel_ctx=None)
        c0 = arith.index_constant(builder, 0)
        for (pname, ptype), arg in zip(kernel.params,
                                       f.body_block().args[grid_rank:]):
            arg_bindings.append(gen.make_param_binding(ptype, arg, c0))
        self.inline_launch(builder, kernel, grid_values,
                           block_shape, arg_bindings)
        func.return_(builder)
        return f

    def inline_launch(self, builder: Builder, kernel: ast.FunctionDef,
                      grid_values: Sequence[Value],
                      block_shape: Tuple[int, ...],
                      arg_bindings: Sequence[Binding]) -> Operation:
        """Inline a kernel launch at the current insertion point (Fig. 5)."""
        c0 = arith.index_constant(builder, 0)
        c1 = arith.index_constant(builder, 1)
        wrapper = polygeist.gpu_wrapper(builder, kernel.name)
        wb = Builder(wrapper.body_block())
        grid_rank = len(grid_values)
        blocks = scf.parallel(
            wb, [c0] * grid_rank, list(grid_values), [c1] * grid_rank,
            gpu_kind=scf.KIND_BLOCKS,
            iv_names=["b%s" % "xyz"[d] for d in range(grid_rank)])
        block_body = Builder(blocks.body_block())
        block_dim_values = [arith.index_constant(block_body, extent)
                            for extent in block_shape]
        threads = scf.parallel(
            block_body, [c0] * len(block_shape), block_dim_values,
            [c1] * len(block_shape), gpu_kind=scf.KIND_THREADS,
            iv_names=["t%s" % "xyz"[d] for d in range(len(block_shape))])
        thread_body = Builder(threads.body_block())

        # Pad ids/dims to 3 dimensions with 0 / 1 constants.
        def pad3(values, fill_builder, fill):
            padded = list(values)
            while len(padded) < 3:
                padded.append(arith.index_constant(fill_builder, fill))
            return tuple(padded)

        ctx = _KernelContext(
            thread_ivs=pad3(threads.body_block().args, thread_body, 0),
            block_ivs=pad3(blocks.body_block().args, thread_body, 0),
            block_dims=pad3(block_dim_values, thread_body, 1),
            grid_dims=pad3(grid_values, thread_body, 1),
            block_builder=Builder(blocks.body_block(),
                                  blocks.body_block().index_of(threads)))
        gen = _FunctionGenerator(self, thread_body, kernel_ctx=ctx)
        gen.push_scope()
        for (pname, ptype), binding in zip(kernel.params, arg_bindings):
            gen.vars[-1][pname] = binding
        gen.gen_stmts(kernel.body.stmts, allow_trailing_return=True)
        scf.yield_(Builder(threads.body_block()))
        scf.yield_(Builder(blocks.body_block()))
        return wrapper


class _FunctionGenerator:
    """Statement/expression generator with SSA variable tracking."""

    def __init__(self, parent: ModuleGenerator, builder: Builder,
                 kernel_ctx: Optional[_KernelContext]):
        self.parent = parent
        self.builder = builder
        self.kernel_ctx = kernel_ctx
        #: scope stack of name -> Binding
        self.vars: List[Dict[str, Binding]] = []
        self._inline_depth = 0
        #: nesting depth of loops; guard-returns are only legal outside
        self._loop_depth = 0

    # -- scopes and variables ----------------------------------------------------

    def push_scope(self) -> None:
        self.vars.append({})

    def pop_scope(self) -> None:
        self.vars.pop()

    def lookup(self, name: str) -> Optional[Binding]:
        for scope in reversed(self.vars):
            if name in scope:
                return scope[name]
        return None

    def rebind(self, name: str, binding: Binding) -> None:
        for scope in reversed(self.vars):
            if name in scope:
                scope[name] = binding
                return
        self.vars[-1][name] = binding

    def declare(self, name: str, binding: Binding) -> None:
        self.vars[-1][name] = binding

    def bind_param(self, name: str, ctype: ast.CType, arg: Value) -> None:
        c0 = arith.index_constant(self.builder, 0)
        self.declare(name, self.make_param_binding(ctype, arg, c0))

    def make_param_binding(self, ctype: ast.CType, arg: Value,
                           zero: Value) -> Binding:
        if ctype.is_pointer:
            return PointerRV(arg, zero, ctype)
        return RValue(arg, ctype)

    # -- constants and coercion -----------------------------------------------------

    def const_index(self, value: int) -> Value:
        return arith.index_constant(self.builder, value)

    def coerce(self, rvalue: RValue, target: ast.CType) -> RValue:
        """Insert conversions so the value has C type ``target``."""
        if isinstance(rvalue, PointerRV):
            if target.is_pointer:
                return rvalue
            raise CodegenError("cannot convert pointer to %s" % target)
        source_type = rvalue.value.type
        target_ir = ir_scalar_type(target)
        if source_type == target_ir:
            return RValue(rvalue.value, target)
        b = self.builder
        value = rvalue.value
        if isinstance(target_ir, FloatType):
            if isinstance(source_type, FloatType):
                name = "arith.extf" if target_ir.width > source_type.width \
                    else "arith.truncf"
                return RValue(arith.cast(b, name, value, target_ir), target)
            if source_type == I1:
                value = arith.cast(b, "arith.extui", value, INDEX)
            return RValue(arith.cast(b, "arith.sitofp", value, target_ir),
                          target)
        if target_ir == INDEX:
            if isinstance(source_type, FloatType):
                return RValue(arith.cast(b, "arith.fptosi", value, INDEX),
                              target)
            if source_type == I1:
                return RValue(arith.cast(b, "arith.extui", value, INDEX),
                              target)
            return RValue(arith.cast(b, "arith.index_cast", value, INDEX),
                          target)
        if target_ir == I1:
            # value != 0
            if isinstance(source_type, FloatType):
                zero = arith.constant(b, 0.0, source_type)
                return RValue(arith.cmpf(b, "ne", value, zero), target)
            zero = arith.constant(b, 0, source_type)
            return RValue(arith.cmpi(b, "ne", value, zero), target)
        raise CodegenError("unsupported conversion %s -> %s" %
                           (source_type, target))

    def usual_conversions(self, lhs: RValue, rhs: RValue
                          ) -> Tuple[RValue, RValue, ast.CType]:
        """C usual arithmetic conversions (simplified rank: f64>f32>int)."""
        rank = {"double": 3, "float": 2}
        lhs_rank = rank.get(lhs.ctype.base, 1)
        rhs_rank = rank.get(rhs.ctype.base, 1)
        if lhs_rank >= rhs_rank:
            common = lhs.ctype if lhs_rank > 1 else ast.CType("int")
        else:
            common = rhs.ctype
        if lhs_rank == 1 and rhs_rank == 1:
            common = ast.CType("int")
        return (self.coerce(lhs, common), self.coerce(rhs, common), common)

    def to_bool(self, rvalue: RValue) -> Value:
        return self.coerce(rvalue, ast.CType("bool")).value

    # -- statements --------------------------------------------------------------------

    def gen_stmts(self, stmts: Sequence[ast.Stmt],
                  allow_trailing_return: bool = False) -> Optional[RValue]:
        """Generate a statement list; returns the trailing return's value."""
        for position, stmt in enumerate(stmts):
            is_last = position == len(stmts) - 1
            # early-return guard: if (cond) return; => wrap the remainder
            if (isinstance(stmt, ast.If) and stmt.else_body is None
                    and _is_bare_return(stmt.then_body)):
                if self._loop_depth > 0:
                    raise CodegenError(
                        "early return inside a loop is not supported")
                rest = stmts[position + 1:]
                cond = self.to_bool(self.gen_expr_rvalue(stmt.cond))
                true_const = arith.constant(self.builder, 1, I1)
                inverted = arith.binary(self.builder, "arith.xori",
                                        cond, true_const)
                result = self._gen_if_merged(
                    inverted,
                    lambda: self.gen_stmts(rest, allow_trailing_return),
                    None,
                    _merge_names=self._visible_assigned(ast.Block(list(rest))))
                return None
            if isinstance(stmt, ast.Return):
                if not (is_last and allow_trailing_return):
                    raise CodegenError(
                        "early return is only supported as 'if (c) return;'")
                if stmt.value is None:
                    return None
                return self.gen_expr_rvalue(stmt.value)
            self.gen_stmt(stmt)
        return None

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.push_scope()
            self.gen_stmts(stmt.stmts)
            self.pop_scope()
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self.gen_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt.cond, stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self.push_scope()
            self.gen_stmts(stmt.body.stmts)
            self.pop_scope()
            self.gen_while(stmt.cond, stmt.body)
        elif isinstance(stmt, ast.KernelLaunch):
            self.gen_launch(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            raise CodegenError("break/continue are not supported")
        elif isinstance(stmt, ast.Return):
            raise CodegenError("unexpected return placement")
        else:
            raise CodegenError("unsupported statement %r" % stmt)

    def gen_decl(self, decl: ast.VarDecl) -> None:
        ctype = decl.type
        if ctype.base == "dim3":
            dims = [self.const_index(1)] * 3
            if isinstance(decl.init, ast.Call) and decl.init.name == "dim3":
                for i, arg in enumerate(decl.init.args[:3]):
                    dims[i] = self.coerce(self.gen_expr_rvalue(arg),
                                          ast.CType("int")).value
            elif decl.init is not None:
                value = self.gen_expr(decl.init)
                if isinstance(value, Dim3RV):
                    dims = list(value.dims)
                else:
                    dims[0] = self.coerce(value, ast.CType("int")).value
            self.declare(decl.name, Dim3RV(tuple(dims)))
            return
        if ctype.is_array:
            extents = []
            for dim_expr in ctype.array_dims:
                extent = const_eval(dim_expr)
                if extent is None:
                    raise CodegenError(
                        "array %r requires constant dimensions" % decl.name)
                extents.append(extent)
            element = ir_element_type(ctype.element_type())
            if decl.shared:
                if self.kernel_ctx is None:
                    raise CodegenError("__shared__ outside a kernel")
                type_ = MemRefType(tuple(extents), element, "shared")
                ref = memref.alloca(self.kernel_ctx.block_builder, type_)
            else:
                type_ = MemRefType(tuple(extents), element, "local")
                ref = memref.alloca(self.builder, type_)
            ref.name_hint = decl.name
            self.declare(decl.name, ArrayRV(ref, ctype))
            return
        if ctype.is_pointer:
            if decl.init is None:
                self.declare(decl.name, PointerRV(
                    _null_memref(self.builder, ctype), self.const_index(0),
                    ctype))
                return
            value = self.gen_expr(decl.init)
            if isinstance(value, ArrayRV):
                value = self._array_decay(value)
            if not isinstance(value, PointerRV):
                raise CodegenError(
                    "pointer %r initialized from non-pointer" % decl.name)
            self.declare(decl.name, PointerRV(value.base, value.offset,
                                              ctype))
            return
        # scalar
        if decl.shared:
            # __shared__ scalar: a 1-element shared buffer
            element = ir_element_type(ctype)
            type_ = MemRefType((1,), element, "shared")
            if self.kernel_ctx is None:
                raise CodegenError("__shared__ outside a kernel")
            ref = memref.alloca(self.kernel_ctx.block_builder, type_)
            ref.name_hint = decl.name
            self.declare(decl.name, ArrayRV(
                ref, ast.CType(ctype.base, 0, (ast.IntLit(1),))))
            return
        if decl.init is not None:
            value = self.gen_expr(decl.init)
            if isinstance(value, PointerRV):
                raise CodegenError(
                    "scalar %r initialized from pointer" % decl.name)
            self.declare(decl.name, self.coerce(value, ctype))
        else:
            zero = arith.constant(self.builder, 0, ir_scalar_type(ctype))
            self.declare(decl.name, RValue(zero, ctype))

    # -- control flow ------------------------------------------------------------------

    def _visible_assigned(self, node) -> List[str]:
        """Visible scalar/pointer variables assigned inside ``node``."""
        names = []
        for name in sorted(assigned_names(node)):
            binding = self.lookup(name)
            if isinstance(binding, (RValue, PointerRV)):
                names.append(name)
        return names

    def _snapshot(self, names: Sequence[str]) -> List[Binding]:
        return [self.lookup(name) for name in names]

    def _binding_values(self, names: Sequence[str]) -> List[Value]:
        values = []
        for name in names:
            binding = self.lookup(name)
            if isinstance(binding, RValue):
                values.append(binding.value)
            elif isinstance(binding, PointerRV):
                values.append(binding.offset)
            else:
                raise CodegenError("cannot merge %r across control flow" %
                                   name)
        return values

    def _restore(self, names: Sequence[str],
                 bindings: Sequence[Binding]) -> None:
        for name, binding in zip(names, bindings):
            self.rebind(name, binding)

    def _check_pointer_bases(self, names: Sequence[str],
                             snapshots: Sequence[Binding]) -> None:
        """Pointers merged across control flow must keep their base buffer."""
        for name, snapshot in zip(names, snapshots):
            if isinstance(snapshot, PointerRV):
                current = self.lookup(name)
                if isinstance(current, PointerRV) and \
                        current.base is not snapshot.base:
                    raise CodegenError(
                        "pointer %r is rebased inside control flow; only "
                        "offset changes can be merged" % name)

    def _rebind_merged(self, names: Sequence[str],
                       snapshots: Sequence[Binding],
                       values: Sequence[Value]) -> None:
        for name, snapshot, value in zip(names, snapshots, values):
            if isinstance(snapshot, PointerRV):
                self.rebind(name, PointerRV(snapshot.base, value,
                                            snapshot.ctype))
            else:
                self.rebind(name, RValue(value, snapshot.ctype))

    def gen_if(self, stmt: ast.If) -> None:
        cond = self.to_bool(self.gen_expr_rvalue(stmt.cond))
        merged = self._visible_assigned(stmt)
        self._gen_if_merged(
            cond,
            lambda: (self.push_scope(), self.gen_stmts(stmt.then_body.stmts),
                     self.pop_scope()),
            (lambda: (self.push_scope(),
                      self.gen_stmts(stmt.else_body.stmts),
                      self.pop_scope()))
            if stmt.else_body is not None else None,
            _merge_names=merged)

    def _gen_if_merged(self, cond: Value, gen_then, gen_else,
                       _merge_names: Sequence[str]) -> None:
        names = list(_merge_names)
        snapshots = self._snapshot(names)
        result_types = [v.type for v in self._binding_values(names)]
        if_op = scf.if_(self.builder, cond, result_types)
        outer = self.builder
        # then branch
        self.builder = Builder(scf.if_then_block(if_op))
        gen_then()
        self._check_pointer_bases(names, snapshots)
        then_values = self._binding_values(names)
        scf.yield_(self.builder, then_values)
        # else branch
        self._restore(names, snapshots)
        self.builder = Builder(scf.if_else_block(if_op))
        if gen_else is not None:
            gen_else()
        self._check_pointer_bases(names, snapshots)
        scf.yield_(self.builder, self._binding_values(names))
        self._restore(names, snapshots)
        self.builder = outer
        self._rebind_merged(names, snapshots, if_op.results)

    def gen_for(self, stmt: ast.For) -> None:
        canonical = self._match_canonical_for(stmt)
        if canonical is None:
            # generic lowering: init; while (cond) { body; inc; }
            self.push_scope()
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            cond = stmt.cond if stmt.cond is not None else ast.IntLit(1)
            body = ast.Block(list(stmt.body.stmts) +
                             ([ast.ExprStmt(stmt.inc)]
                              if stmt.inc is not None else []))
            self.gen_while(cond, body)
            self.pop_scope()
            return
        var, lb_expr, ub_expr, inclusive, step = canonical
        self.push_scope()
        lb = self.coerce(self.gen_expr_rvalue(lb_expr),
                         ast.CType("int")).value
        ub = self.coerce(self.gen_expr_rvalue(ub_expr),
                         ast.CType("int")).value
        if inclusive:
            ub = arith.addi(self.builder, ub, self.const_index(1))
        step_value = self.const_index(step)
        carried = self._visible_assigned_excluding(stmt.body, {var})
        snapshots = self._snapshot(carried)
        loop = scf.for_(self.builder, lb, ub, step_value,
                        self._binding_values(carried), iv_name=var)
        outer = self.builder
        self.builder = Builder(loop.body_block())
        self.push_scope()
        self.declare(var, RValue(loop.body_block().arg(0), ast.CType("int")))
        self._rebind_merged(carried, snapshots, loop.body_block().args[1:])
        self._loop_depth += 1
        self.gen_stmts(stmt.body.stmts)
        self._loop_depth -= 1
        self._check_pointer_bases(carried, snapshots)
        scf.yield_(self.builder, self._binding_values(carried))
        self.pop_scope()
        self.builder = outer
        self._rebind_merged(carried, snapshots, loop.results)
        self.pop_scope()

    def _visible_assigned_excluding(self, node, exclude) -> List[str]:
        return [n for n in self._visible_assigned(node) if n not in exclude]

    def _match_canonical_for(self, stmt: ast.For):
        """Recognize ``for (i = lb; i < ub; i += c)`` with immutable i."""
        if stmt.init is None or stmt.cond is None or stmt.inc is None:
            return None
        # init
        if isinstance(stmt.init, ast.DeclStmt):
            if len(stmt.init.decls) != 1:
                return None
            decl = stmt.init.decls[0]
            if not decl.type.is_integer or decl.init is None:
                return None
            var, lb_expr = decl.name, decl.init
        elif isinstance(stmt.init, ast.ExprStmt) and \
                isinstance(stmt.init.expr, ast.Assign) and \
                stmt.init.expr.op == "=" and \
                isinstance(stmt.init.expr.target, ast.Ident):
            var, lb_expr = stmt.init.expr.target.name, stmt.init.expr.value
        else:
            return None
        # condition
        cond = stmt.cond
        if not (isinstance(cond, ast.BinOp) and cond.op in ("<", "<=") and
                isinstance(cond.lhs, ast.Ident) and cond.lhs.name == var):
            return None
        ub_expr = cond.rhs
        inclusive = cond.op == "<="
        # increment
        inc = stmt.inc
        step = None
        if isinstance(inc, ast.UnOp) and inc.op == "++" and \
                isinstance(inc.operand, ast.Ident) and \
                inc.operand.name == var:
            step = 1
        elif isinstance(inc, ast.Assign) and \
                isinstance(inc.target, ast.Ident) and \
                inc.target.name == var:
            if inc.op == "+=":
                step = const_eval(inc.value)
            elif inc.op == "=" and isinstance(inc.value, ast.BinOp) and \
                    inc.value.op == "+" and \
                    isinstance(inc.value.lhs, ast.Ident) and \
                    inc.value.lhs.name == var:
                step = const_eval(inc.value.rhs)
        if step is None or step <= 0:
            return None
        # the induction variable must not be written in the body, and the
        # bound must not depend on body-assigned variables
        body_assigned = assigned_names(stmt.body)
        if var in body_assigned:
            return None
        if _free_names(ub_expr) & body_assigned:
            return None
        if _free_names(lb_expr) & body_assigned:
            return None
        return var, lb_expr, ub_expr, inclusive, step

    def gen_while(self, cond_expr: ast.Expr, body: ast.Block) -> None:
        carried = self._visible_assigned(body)
        # the condition may also read variables; carried covers writes only
        snapshots = self._snapshot(carried)
        init_values = self._binding_values(carried)
        result_types = [v.type for v in init_values]
        while_op = scf.while_(self.builder, init_values, result_types)
        outer = self.builder
        # before region: rebind carried to region args, evaluate condition
        before = while_op.body_block(0)
        self.builder = Builder(before)
        self._rebind_merged(carried, snapshots, before.args)
        cond = self.to_bool(self.gen_expr_rvalue(cond_expr))
        scf.condition(self.builder, cond, self._binding_values(carried))
        # after region: body
        after = while_op.body_block(1)
        self.builder = Builder(after)
        self._rebind_merged(carried, snapshots, after.args)
        self.push_scope()
        self._loop_depth += 1
        self.gen_stmts(body.stmts)
        self._loop_depth -= 1
        self.pop_scope()
        self._check_pointer_bases(carried, snapshots)
        scf.yield_(self.builder, self._binding_values(carried))
        self.builder = outer
        self._restore(carried, snapshots)
        self._rebind_merged(carried, snapshots, while_op.results)

    # -- kernel launches -----------------------------------------------------------------

    def gen_launch(self, stmt: ast.KernelLaunch) -> None:
        kernel = self.parent.unit.functions.get(stmt.name)
        if kernel is None or not kernel.is_kernel:
            raise CodegenError("launch of unknown kernel %r" % stmt.name)
        grid_values = self._launch_dims(stmt.grid, allow_dynamic=True)
        block_shape = []
        for value in self._launch_dims(stmt.block, allow_dynamic=False):
            block_shape.append(value)
        arg_bindings: List[Binding] = []
        for arg_expr, (_, ptype) in zip(stmt.args, kernel.params):
            value = self.gen_expr(arg_expr)
            if isinstance(value, ArrayRV):
                value = self._array_decay(value)
            if ptype.is_pointer:
                if not isinstance(value, PointerRV):
                    raise CodegenError("kernel %r expects a pointer arg" %
                                       stmt.name)
                arg_bindings.append(value)
            else:
                arg_bindings.append(self.coerce(value, ptype))
        self.parent.inline_launch(self.builder, kernel, grid_values,
                                  tuple(block_shape), arg_bindings)

    def _launch_dims(self, expr: ast.Expr, allow_dynamic: bool):
        """Evaluate a launch config expr: ints or dim3 of them."""
        if isinstance(expr, ast.Call) and expr.name == "dim3":
            dims = [self._launch_dim(e, allow_dynamic) for e in expr.args]
            return dims
        if isinstance(expr, ast.Ident):
            binding = self.lookup(expr.name)
            if isinstance(binding, Dim3RV):
                dims = list(binding.dims)
                # drop trailing size-1 dimensions (dim3 defaults)
                while len(dims) > 1 and _is_const_one(dims[-1]):
                    dims.pop()
                if allow_dynamic:
                    return dims
                return [self._require_const(d) for d in dims]
        return [self._launch_dim(expr, allow_dynamic)]

    def _launch_dim(self, expr: ast.Expr, allow_dynamic: bool):
        value = self.coerce(self.gen_expr_rvalue(expr),
                            ast.CType("int")).value
        if allow_dynamic:
            return value
        return self._require_const(value)

    def _require_const(self, value: Value) -> int:
        constant = arith.constant_value(value)
        if constant is None:
            raise CodegenError(
                "block dimensions must be compile-time constants")
        return int(constant)

    # -- expressions -------------------------------------------------------------------------

    def gen_expr_rvalue(self, expr: ast.Expr) -> RValue:
        value = self.gen_expr(expr)
        if isinstance(value, ArrayRV):
            raise CodegenError("array used where a scalar is required")
        if isinstance(value, PointerRV):
            raise CodegenError("pointer used where a scalar is required")
        if isinstance(value, Dim3RV):
            raise CodegenError("dim3 used where a scalar is required")
        return value

    def gen_expr(self, expr: ast.Expr) -> Binding:
        if isinstance(expr, ast.IntLit):
            return RValue(self.const_index(expr.value), ast.CType("int"))
        if isinstance(expr, ast.FloatLit):
            if expr.is_f32:
                return RValue(arith.constant(self.builder, expr.value, F32),
                              ast.CType("float"))
            return RValue(arith.constant(self.builder, expr.value, F64),
                          ast.CType("double"))
        if isinstance(expr, ast.Ident):
            return self.gen_ident(expr.name)
        if isinstance(expr, ast.Member):
            return self.gen_member(expr)
        if isinstance(expr, ast.BinOp):
            return self.gen_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self.gen_unop(expr)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self.gen_ternary(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        if isinstance(expr, ast.Index):
            return self.gen_load(expr)
        if isinstance(expr, ast.Deref):
            return self.gen_load(ast.Index(expr.expr, ast.IntLit(0)))
        if isinstance(expr, ast.Cast):
            return self.gen_cast(expr)
        if isinstance(expr, ast.AddressOf):
            return self.gen_address_of(expr.expr)
        if isinstance(expr, ast.Comma):
            result: Binding = RValue(self.const_index(0), ast.CType("int"))
            for sub in expr.exprs:
                result = self.gen_expr(sub)
            return result
        raise CodegenError("unsupported expression %r" % expr)

    def gen_ident(self, name: str) -> Binding:
        binding = self.lookup(name)
        if binding is not None:
            return binding
        # module-level globals
        try:
            ref = memref.get_global(self.builder, self.parent.module.op,
                                    name)
        except KeyError:
            raise CodegenError("use of undeclared identifier %r" % name)
        base = _base_of_memref_type(ref.type)
        return ArrayRV(ref, ast.CType(base, 0,
                                      tuple(ast.IntLit(d)
                                            for d in ref.type.shape)))

    def gen_member(self, expr: ast.Member) -> Binding:
        if isinstance(expr.base, ast.Ident):
            base_name = expr.base.name
            axis = {"x": 0, "y": 1, "z": 2}.get(expr.name)
            if axis is not None:
                ctx = self.kernel_ctx
                if base_name in ("threadIdx", "blockIdx", "blockDim",
                                 "gridDim"):
                    if ctx is None:
                        raise CodegenError(
                            "%s used outside a kernel" % base_name)
                    table = {"threadIdx": ctx.thread_ivs,
                             "blockIdx": ctx.block_ivs,
                             "blockDim": ctx.block_dims,
                             "gridDim": ctx.grid_dims}
                    return RValue(table[base_name][axis], ast.CType("int"))
                binding = self.lookup(base_name)
                if isinstance(binding, Dim3RV):
                    return RValue(binding.dims[axis], ast.CType("int"))
        raise CodegenError("unsupported member access %r" % expr)

    def gen_binop(self, expr: ast.BinOp) -> Binding:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_short_circuit(expr)
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)
        # pointer arithmetic
        if isinstance(lhs, ArrayRV):
            lhs = self._array_decay(lhs)
        if isinstance(rhs, ArrayRV):
            rhs = self._array_decay(rhs)
        if isinstance(lhs, PointerRV) or isinstance(rhs, PointerRV):
            return self.gen_pointer_binop(op, lhs, rhs)
        assert isinstance(lhs, RValue) and isinstance(rhs, RValue)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            lhs, rhs, common = self.usual_conversions(lhs, rhs)
            predicate = {"==": "eq", "!=": "ne", "<": "lt", ">": "gt",
                         "<=": "le", ">=": "ge"}[op]
            if common.is_float:
                value = arith.cmpf(self.builder, predicate, lhs.value,
                                   rhs.value)
            else:
                value = arith.cmpi(self.builder, predicate, lhs.value,
                                   rhs.value)
            return RValue(value, ast.CType("bool"))
        lhs, rhs, common = self.usual_conversions(lhs, rhs)
        if common.is_float:
            table = {"+": "arith.addf", "-": "arith.subf",
                     "*": "arith.mulf", "/": "arith.divf",
                     "%": "arith.remf"}
            name = table.get(op)
            if name is None:
                raise CodegenError("operator %r on floats" % op)
        else:
            table = {"+": "arith.addi", "-": "arith.subi",
                     "*": "arith.muli", "/": "arith.divsi",
                     "%": "arith.remsi", "<<": "arith.shli",
                     ">>": "arith.shrsi", "&": "arith.andi",
                     "|": "arith.ori", "^": "arith.xori"}
            name = table.get(op)
            if name is None:
                raise CodegenError("unsupported integer operator %r" % op)
        value = arith.binary(self.builder, name, lhs.value, rhs.value)
        return RValue(value, common)

    def gen_pointer_binop(self, op: str, lhs: Binding,
                          rhs: Binding) -> Binding:
        if op == "+" and isinstance(lhs, PointerRV) and \
                isinstance(rhs, RValue):
            offset = self.coerce(rhs, ast.CType("int")).value
            return PointerRV(lhs.base,
                             arith.addi(self.builder, lhs.offset, offset),
                             lhs.ctype)
        if op == "+" and isinstance(rhs, PointerRV) and \
                isinstance(lhs, RValue):
            return self.gen_pointer_binop("+", rhs, lhs)
        if op == "-" and isinstance(lhs, PointerRV) and \
                isinstance(rhs, RValue):
            offset = self.coerce(rhs, ast.CType("int")).value
            return PointerRV(lhs.base,
                             arith.subi(self.builder, lhs.offset, offset),
                             lhs.ctype)
        if op == "-" and isinstance(lhs, PointerRV) and \
                isinstance(rhs, PointerRV):
            if lhs.base is not rhs.base:
                raise CodegenError("subtracting unrelated pointers")
            return RValue(arith.subi(self.builder, lhs.offset, rhs.offset),
                          ast.CType("int"))
        raise CodegenError("unsupported pointer operation %r" % op)

    def gen_short_circuit(self, expr: ast.BinOp) -> RValue:
        lhs = self.to_bool(self.gen_expr_rvalue(expr.lhs))
        if_op = scf.if_(self.builder, lhs, [I1])
        outer = self.builder
        then_builder = Builder(scf.if_then_block(if_op))
        else_builder = Builder(scf.if_else_block(if_op))
        if expr.op == "&&":
            self.builder = then_builder
            rhs = self.to_bool(self.gen_expr_rvalue(expr.rhs))
            scf.yield_(self.builder, [rhs])
            scf.yield_(else_builder, [arith.constant(else_builder, 0, I1)])
        else:
            scf.yield_(then_builder, [arith.constant(then_builder, 1, I1)])
            self.builder = else_builder
            rhs = self.to_bool(self.gen_expr_rvalue(expr.rhs))
            scf.yield_(self.builder, [rhs])
        self.builder = outer
        return RValue(if_op.result(), ast.CType("bool"))

    def gen_unop(self, expr: ast.UnOp) -> Binding:
        if expr.op in ("++", "--"):
            return self.gen_incdec(expr)
        operand = self.gen_expr_rvalue(expr.operand)
        if expr.op == "+":
            return operand
        if expr.op == "-":
            if operand.ctype.is_float:
                return RValue(arith.negf(self.builder, operand.value),
                              operand.ctype)
            as_int = self.coerce(operand, ast.CType("int"))
            zero = self.const_index(0)
            return RValue(arith.subi(self.builder, zero, as_int.value),
                          ast.CType("int"))
        if expr.op == "!":
            as_bool = self.to_bool(operand)
            true_const = arith.constant(self.builder, 1, I1)
            return RValue(arith.binary(self.builder, "arith.xori", as_bool,
                                       true_const), ast.CType("bool"))
        if expr.op == "~":
            as_int = self.coerce(operand, ast.CType("int"))
            minus_one = self.const_index(-1)
            return RValue(arith.binary(self.builder, "arith.xori",
                                       as_int.value, minus_one),
                          ast.CType("int"))
        raise CodegenError("unsupported unary operator %r" % expr.op)

    def gen_incdec(self, expr: ast.UnOp) -> RValue:
        target = expr.operand
        old = self.gen_expr(target)
        one_int = ast.IntLit(1)
        op = "+" if expr.op == "++" else "-"
        if isinstance(old, PointerRV):
            new_binding = self.gen_pointer_binop(
                op, old, RValue(self.const_index(1), ast.CType("int")))
            self._store_into(target, new_binding)
            return old if expr.postfix else new_binding
        assert isinstance(old, RValue)
        one = arith.constant(self.builder, 1,
                             ir_scalar_type(old.ctype)) \
            if old.ctype.is_float else self.const_index(1)
        if old.ctype.is_float:
            name = "arith.addf" if op == "+" else "arith.subf"
        else:
            name = "arith.addi" if op == "+" else "arith.subi"
        new_value = RValue(arith.binary(self.builder, name, old.value, one),
                           old.ctype)
        self._store_into(target, new_value)
        return old if expr.postfix else new_value

    def gen_assign(self, expr: ast.Assign) -> Binding:
        if expr.op == "=":
            value = self.gen_expr(expr.value)
            if isinstance(value, ArrayRV):
                value = self._array_decay(value)
            self._store_into(expr.target, value)
            return value
        # compound assignment: target op= value
        binary = ast.BinOp(expr.op[:-1], expr.target, expr.value)
        value = self.gen_expr(binary)
        self._store_into(expr.target, value)
        return value

    def _store_into(self, target: ast.Expr, value: Binding) -> None:
        if isinstance(target, ast.Ident):
            binding = self.lookup(target.name)
            if binding is None:
                raise CodegenError("assignment to undeclared %r" %
                                   target.name)
            if isinstance(binding, PointerRV):
                if not isinstance(value, PointerRV):
                    raise CodegenError("assigning non-pointer to pointer %r"
                                       % target.name)
                self.rebind(target.name, PointerRV(value.base, value.offset,
                                                   binding.ctype))
                return
            if isinstance(binding, ArrayRV):
                if len(binding.ctype.array_dims) == 1 and \
                        const_eval(binding.ctype.array_dims[0]) == 1:
                    # __shared__ scalar
                    assert isinstance(value, RValue)
                    coerced = self.coerce(
                        value, binding.ctype.element_type())
                    stored = self._narrow_to_storage(coerced.value,
                                                     binding.ref)
                    memref.store(self.builder, stored, binding.ref,
                                 [self.const_index(0)])
                    return
                raise CodegenError("cannot assign to array %r" % target.name)
            assert isinstance(binding, RValue)
            if isinstance(value, PointerRV):
                raise CodegenError("assigning pointer to scalar %r" %
                                   target.name)
            self.rebind(target.name, self.coerce(value, binding.ctype))
            return
        if isinstance(target, ast.Index) or isinstance(target, ast.Deref):
            if isinstance(target, ast.Deref):
                target = ast.Index(target.expr, ast.IntLit(0))
            ref, indices, element = self._resolve_access(target)
            assert isinstance(value, RValue)
            coerced = self.coerce(value, element)
            stored = self._narrow_to_storage(coerced.value, ref)
            memref.store(self.builder, stored, ref, indices)
            return
        raise CodegenError("unsupported assignment target %r" % target)

    def _narrow_to_storage(self, value: Value, ref: Value) -> Value:
        """Cast a value to the memref's element storage type if needed."""
        storage = ref.type.element
        if value.type != storage and isinstance(storage, IntegerType) and \
                storage.width > 1:
            return arith.cast(self.builder, "arith.index_cast", value,
                              storage)
        return value

    def gen_ternary(self, expr: ast.Ternary) -> RValue:
        cond = self.to_bool(self.gen_expr_rvalue(expr.cond))
        outer = self.builder
        # probe types by generating both sides inside the if
        if_op = scf.if_(self.builder, cond, [])
        self.builder = Builder(scf.if_then_block(if_op))
        true_value = self.gen_expr_rvalue(expr.true_value)
        true_builder = self.builder
        self.builder = Builder(scf.if_else_block(if_op))
        false_value = self.gen_expr_rvalue(expr.false_value)
        false_builder = self.builder
        # unify types
        rank = {"double": 3, "float": 2}
        if rank.get(true_value.ctype.base, 1) >= \
                rank.get(false_value.ctype.base, 1):
            common = true_value.ctype
        else:
            common = false_value.ctype
        self.builder = true_builder
        true_value = self.coerce(true_value, common)
        scf.yield_(self.builder, [true_value.value])
        self.builder = false_builder
        false_value = self.coerce(false_value, common)
        scf.yield_(self.builder, [false_value.value])
        self.builder = outer
        result = if_op.results
        # patch result type now that we know it
        from ..ir import OpResult
        if_op.results.append(OpResult(if_op, 0, true_value.value.type))
        return RValue(if_op.results[0], common)

    def gen_cast(self, expr: ast.Cast) -> Binding:
        value = self.gen_expr(expr.expr)
        if isinstance(value, ArrayRV):
            value = self._array_decay(value)
        if isinstance(value, PointerRV):
            if expr.type.is_pointer:
                return PointerRV(value.base, value.offset, expr.type)
            raise CodegenError("cannot cast pointer to scalar")
        return self.coerce(value, expr.type)

    def gen_address_of(self, expr: ast.Expr) -> PointerRV:
        if isinstance(expr, ast.Index):
            ref, indices, element = self._resolve_access(expr)
            if len(indices) != 1:
                raise CodegenError(
                    "address-of supports 1-D indexing only")
            ctype = ast.CType(element.base, 1)
            return PointerRV(ref, indices[0], ctype)
        if isinstance(expr, ast.Ident):
            binding = self.lookup(expr.name)
            if isinstance(binding, ArrayRV):
                decayed = self._array_decay(binding)
                return decayed
        raise CodegenError("unsupported address-of %r" % expr)

    # -- memory access --------------------------------------------------------------------

    def _array_decay(self, array: ArrayRV) -> PointerRV:
        """Arrays decay to a pointer only when 1-D (flat view)."""
        type_ = array.ref.type
        if type_.rank != 1:
            raise CodegenError("multi-dimensional array cannot decay")
        element = array.ctype.element_type()
        return PointerRV(array.ref, self.const_index(0),
                         ast.CType(element.base, 1))

    def _resolve_access(self, expr: ast.Index):
        """Resolve a chain of Index nodes to (memref, indices, elem ctype)."""
        chain: List[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            chain.append(node.index)
            node = node.base
        chain.reverse()
        base = self.gen_expr(node)
        if isinstance(base, ArrayRV):
            rank = base.ref.type.rank
            if len(chain) != rank:
                raise CodegenError(
                    "array access with %d indices, rank %d" %
                    (len(chain), rank))
            indices = [self.coerce(self.gen_expr_rvalue(e),
                                   ast.CType("int")).value for e in chain]
            return base.ref, indices, base.ctype.element_type()
        if isinstance(base, PointerRV):
            if len(chain) != 1:
                raise CodegenError("pointer access must be 1-D")
            index = self.coerce(self.gen_expr_rvalue(chain[0]),
                                ast.CType("int")).value
            flat = arith.addi(self.builder, base.offset, index)
            return base.base, [flat], base.ctype.element_type()
        raise CodegenError("subscript of non-array %r" % node)

    def gen_load(self, expr: ast.Index) -> RValue:
        ref, indices, element = self._resolve_access(expr)
        value = memref.load(self.builder, ref, indices)
        expected = ir_scalar_type(element)
        if value.type != expected:
            # narrow integer storage widens back to the index value type
            value = arith.cast(self.builder, "arith.index_cast", value,
                               expected)
        return RValue(value, element)

    # -- calls ------------------------------------------------------------------------------

    def gen_call(self, expr: ast.Call) -> Binding:
        name = expr.name
        if name == "__syncthreads":
            if self.kernel_ctx is None:
                raise CodegenError("__syncthreads outside a kernel")
            ivs = [iv for iv in self.kernel_ctx.thread_ivs
                   if _is_block_arg(iv)]
            polygeist.barrier(self.builder, ivs)
            return RValue(self.const_index(0), ast.CType("int"))
        if name in _IGNORED_CALLS:
            for arg in expr.args:
                # arguments may have side effects (rare); skip generation
                pass
            return RValue(self.const_index(0), ast.CType("int"))
        if name in _MATH_BUILTINS:
            op_name, arity, precision = _MATH_BUILTINS[name]
            if len(expr.args) != arity:
                raise CodegenError("%s expects %d arguments" % (name, arity))
            target = ast.CType("float" if precision == F32 else "double")
            args = [self.coerce(self.gen_expr_rvalue(a), target).value
                    for a in expr.args]
            if op_name.startswith("math."):
                if arity == 1:
                    return RValue(math_d.unary(self.builder, op_name,
                                               args[0]), target)
                return RValue(math_d.binary(self.builder, op_name, args[0],
                                            args[1]), target)
            return RValue(arith.binary(self.builder, op_name, args[0],
                                       args[1]), target)
        if name in ("min", "max"):
            lhs = self.gen_expr_rvalue(expr.args[0])
            rhs = self.gen_expr_rvalue(expr.args[1])
            lhs, rhs, common = self.usual_conversions(lhs, rhs)
            if common.is_float:
                op_name = "arith.minf" if name == "min" else "arith.maxf"
            else:
                op_name = "arith.minsi" if name == "min" else "arith.maxsi"
            return RValue(arith.binary(self.builder, op_name, lhs.value,
                                       rhs.value), common)
        if name == "abs":
            value = self.coerce(self.gen_expr_rvalue(expr.args[0]),
                                ast.CType("int"))
            zero = self.const_index(0)
            neg = arith.subi(self.builder, zero, value.value)
            is_neg = arith.cmpi(self.builder, "lt", value.value, zero)
            return RValue(arith.select(self.builder, is_neg, neg,
                                       value.value), ast.CType("int"))
        if name in ("atomicAdd", "atomicMax", "atomicMin", "atomicExch"):
            return self.gen_atomic(name, expr.args)
        if name == "dim3":
            dims = [self.coerce(self.gen_expr_rvalue(a),
                                ast.CType("int")).value
                    for a in expr.args[:3]]
            while len(dims) < 3:
                dims.append(self.const_index(1))
            return Dim3RV(tuple(dims))
        # user function: inline
        definition = self.parent.unit.functions.get(name)
        if definition is None:
            raise CodegenError("call to unknown function %r" % name)
        return self.inline_call(definition, expr.args)

    def gen_atomic(self, name: str, args: Sequence[ast.Expr]) -> RValue:
        if len(args) != 2:
            raise CodegenError("%s expects (address, value)" % name)
        address = args[0]
        if isinstance(address, ast.AddressOf):
            pointer = self.gen_address_of(address.expr)
        else:
            value = self.gen_expr(address)
            if isinstance(value, ArrayRV):
                value = self._array_decay(value)
            if not isinstance(value, PointerRV):
                raise CodegenError("%s needs a pointer argument" % name)
            pointer = value
        element = pointer.ctype.element_type()
        operand = self.coerce(self.gen_expr_rvalue(args[1]), element)
        is_float = element.is_float
        kind = {"atomicAdd": "addf" if is_float else "addi",
                "atomicMax": "maxf" if is_float else "maxi",
                "atomicMin": "minf" if is_float else "mini",
                "atomicExch": "exchange"}[name]
        old = memref.atomic_rmw(self.builder, kind, operand.value,
                                pointer.base, [pointer.offset])
        return RValue(old, element)

    def inline_call(self, definition: ast.FunctionDef,
                    args: Sequence[ast.Expr]) -> Binding:
        if self._inline_depth > 16:
            raise CodegenError("call inlining too deep (recursion?)")
        if len(args) != len(definition.params):
            raise CodegenError("call to %r with wrong arity" %
                               definition.name)
        bindings: List[Binding] = []
        for arg_expr, (_, ptype) in zip(args, definition.params):
            value = self.gen_expr(arg_expr)
            if isinstance(value, ArrayRV):
                value = self._array_decay(value)
            if ptype.is_pointer:
                if not isinstance(value, PointerRV):
                    raise CodegenError("%r expects a pointer argument" %
                                       definition.name)
                bindings.append(value)
            else:
                bindings.append(self.coerce(value, ptype))
        saved_scopes = self.vars
        self.vars = [{}]
        self._inline_depth += 1
        for (pname, _), binding in zip(definition.params, bindings):
            self.declare(pname, binding)
        result = self.gen_stmts(definition.body.stmts,
                                allow_trailing_return=True)
        self._inline_depth -= 1
        self.vars = saved_scopes
        if definition.return_type.base == "void":
            return RValue(self.const_index(0), ast.CType("int"))
        if result is None:
            raise CodegenError("function %r must end in a return" %
                               definition.name)
        return self.coerce(result, definition.return_type)


# -- small helpers ------------------------------------------------------------------


def _is_bare_return(block: ast.Block) -> bool:
    return len(block.stmts) == 1 and \
        isinstance(block.stmts[0], ast.Return) and \
        block.stmts[0].value is None


def _free_names(expr: ast.Expr) -> Set[str]:
    names: Set[str] = set()

    def visit(node):
        if isinstance(node, ast.Ident):
            names.add(node.name)
        elif isinstance(node, ast.BinOp):
            visit(node.lhs)
            visit(node.rhs)
        elif isinstance(node, ast.UnOp):
            visit(node.operand)
        elif isinstance(node, ast.Assign):
            visit(node.target)
            visit(node.value)
        elif isinstance(node, ast.Ternary):
            visit(node.cond)
            visit(node.true_value)
            visit(node.false_value)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, ast.Index):
            visit(node.base)
            visit(node.index)
        elif isinstance(node, ast.Member):
            visit(node.base)
        elif isinstance(node, (ast.Cast, ast.AddressOf, ast.Deref)):
            visit(node.expr)
        elif isinstance(node, ast.Comma):
            for sub in node.exprs:
                visit(sub)

    visit(expr)
    return names


def _is_block_arg(value) -> bool:
    from ..ir import BlockArgument
    return isinstance(value, BlockArgument)


def _is_const_one(value: Value) -> bool:
    return arith.constant_value(value) == 1


def _null_memref(builder: Builder, ctype: ast.CType) -> Value:
    """Placeholder buffer for uninitialized pointers."""
    element = ir_scalar_type(ctype.element_type())
    return memref.alloca(builder, MemRefType((1,), element, "local"))


def _base_of_memref_type(type_: MemRefType) -> str:
    element = type_.element
    if element == F32:
        return "float"
    if element == F64:
        return "double"
    return "int"
