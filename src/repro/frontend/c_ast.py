"""AST node definitions for the CUDA C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# -- types ---------------------------------------------------------------------

#: base type names after normalization
BASES = ("void", "int", "uint", "long", "float", "double", "bool", "dim3",
         "char")


@dataclass(frozen=True)
class CType:
    """A C type: a base scalar, pointer depth, and array dimensions."""

    base: str
    pointer: int = 0
    #: array dimensions as unevaluated constant expressions
    array_dims: Tuple[object, ...] = ()
    const: bool = False

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def is_float(self) -> bool:
        return self.base in ("float", "double") and self.pointer == 0 \
            and not self.array_dims

    @property
    def is_integer(self) -> bool:
        return self.base in ("int", "uint", "long", "bool", "char") \
            and self.pointer == 0 and not self.array_dims

    def element_type(self) -> "CType":
        """The scalar type referenced by a pointer or stored in an array."""
        return CType(self.base, 0, (), self.const)

    def __str__(self) -> str:
        text = self.base + "*" * self.pointer
        for dim in self.array_dims:
            text += "[%s]" % (dim,)
        return text


VOID = CType("void")
INT = CType("int")
FLOAT = CType("float")
DOUBLE = CType("double")
BOOL = CType("bool")


# -- expressions ---------------------------------------------------------------


@dataclass
class Expr:
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float
    is_f32: bool = False


@dataclass
class Ident(Expr):
    name: str


@dataclass
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class UnOp(Expr):
    op: str            # "-", "!", "~", "++", "--", "+"
    operand: Expr
    postfix: bool = False


@dataclass
class Assign(Expr):
    op: str            # "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    true_value: Expr
    false_value: Expr


@dataclass
class Call(Expr):
    name: str
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    name: str


@dataclass
class Cast(Expr):
    type: CType
    expr: Expr


@dataclass
class AddressOf(Expr):
    expr: Expr


@dataclass
class Deref(Expr):
    expr: Expr


@dataclass
class Comma(Expr):
    exprs: List[Expr]


# -- statements ------------------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class VarDecl:
    name: str
    type: CType
    init: Optional[Expr] = None
    shared: bool = False
    constant: bool = False


@dataclass
class DeclStmt(Stmt):
    decls: List[VarDecl]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: "Block"
    else_body: Optional["Block"] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    inc: Optional[Expr]
    body: "Block"


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"


@dataclass
class DoWhile(Stmt):
    body: "Block"
    cond: Expr


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class KernelLaunch(Stmt):
    """``name<<<grid, block[, shmem]>>>(args);``"""
    name: str
    grid: Expr
    block: Expr
    args: List[Expr]
    shmem: Optional[Expr] = None


# -- top level -------------------------------------------------------------------


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    params: List[Tuple[str, CType]]
    body: Block
    qualifiers: Tuple[str, ...] = ()

    @property
    def is_kernel(self) -> bool:
        return "__global__" in self.qualifiers

    @property
    def is_device(self) -> bool:
        return "__device__" in self.qualifiers


@dataclass
class GlobalDecl:
    decl: VarDecl
    device: bool = False


@dataclass
class TranslationUnit:
    functions: Dict[str, FunctionDef] = field(default_factory=dict)
    globals: List[GlobalDecl] = field(default_factory=list)

    def kernels(self) -> List[FunctionDef]:
        return [f for f in self.functions.values() if f.is_kernel]
