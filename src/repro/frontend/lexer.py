"""Tokenizer for the CUDA C subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "void", "int", "unsigned", "signed", "long", "short", "char", "float",
    "double", "bool", "size_t", "const", "static", "extern", "if", "else",
    "for", "while", "do", "return", "break", "continue", "struct", "true",
    "false", "sizeof", "volatile", "restrict", "dim3",
    "__global__", "__device__", "__host__", "__shared__", "__constant__",
    "__restrict__", "__forceinline__", "inline",
}

#: multi-character operators, longest first
OPERATORS = [
    "<<<", ">>>", "<<=", ">>=", "...",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?",
    ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]

_ID = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_FLOAT = re.compile(
    r"(\d+\.\d*([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fF]?")
_INT = re.compile(r"(0[xX][0-9a-fA-F]+|\d+)[uUlL]*")


class LexError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__("%s (line %d)" % (message, line))
        self.line = line


@dataclass
class Token:
    kind: str       # "id", "keyword", "int", "float", "string", "char", "op", "eof"
    text: str
    line: int
    #: numeric value for int/float tokens
    value: object = None
    #: True for float literals with an f/F suffix (C float vs double)
    is_f32: bool = False

    def __repr__(self) -> str:
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(source: str) -> List[Token]:
    """Tokenize preprocessed source text."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        match = _FLOAT.match(source, pos)
        if match:
            text = match.group()
            is_f32 = text[-1] in "fF"
            number = float(text.rstrip("fF"))
            tokens.append(Token("float", text, line, number, is_f32))
            pos = match.end()
            continue
        match = _INT.match(source, pos)
        if match:
            text = match.group()
            digits = text.rstrip("uUlL")
            value = int(digits, 16) if digits.lower().startswith("0x") \
                else int(digits)
            tokens.append(Token("int", text, line, value))
            pos = match.end()
            continue
        match = _ID.match(source, pos)
        if match:
            text = match.group()
            kind = "keyword" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line))
            pos = match.end()
            continue
        if ch == '"':
            end = pos + 1
            while end < n and source[end] != '"':
                end += 2 if source[end] == "\\" else 1
            if end >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("string", source[pos:end + 1], line,
                                source[pos + 1:end]))
            pos = end + 1
            continue
        if ch == "'":
            end = pos + 1
            while end < n and source[end] != "'":
                end += 2 if source[end] == "\\" else 1
            if end >= n:
                raise LexError("unterminated char literal", line)
            body = source[pos + 1:end]
            value = ord(body[-1]) if body else 0
            tokens.append(Token("char", source[pos:end + 1], line, value))
            pos = end + 1
            continue
        for operator in OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator, line))
                pos += len(operator)
                break
        else:
            raise LexError("unexpected character %r" % ch, line)
    tokens.append(Token("eof", "", line))
    return tokens
