"""Pass infrastructure: a pass base class and a sequential pass manager."""

from __future__ import annotations

from typing import Iterable, List, Optional

from .module import Module
from .verifier import verify_module


class Pass:
    """Base class for module-level transformation passes."""

    #: Human-readable pass name; defaults to the class name.
    name: str = ""

    def run(self, module: Module) -> bool:
        """Transform ``module`` in place; return True if anything changed."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name or type(self).__name__


class PassManager:
    """Runs a sequence of passes, optionally verifying after each."""

    def __init__(self, passes: Iterable[Pass] = (), verify: bool = True):
        self.passes: List[Pass] = list(passes)
        self.verify = verify
        #: names of the passes that reported a change during the last run
        self.changed_passes: List[str] = []

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        self.changed_passes = []
        changed_any = False
        for pass_ in self.passes:
            changed = pass_.run(module)
            if changed:
                changed_any = True
                self.changed_passes.append(str(pass_))
            if self.verify:
                verify_module(module)
        return changed_any

    def run_until_fixpoint(self, module: Module, max_iterations: int = 16
                           ) -> None:
        """Re-run the pipeline until no pass reports a change."""
        for _ in range(max_iterations):
            if not self.run(module):
                return
