"""Pass infrastructure: a pass base class and a sequential pass manager.

Every pass run is observable: the manager records a :class:`PassRecord`
(wall time, changed flag, op-count delta when observability is on) per
pass per run — including for a pass that raises, so a crash never loses
the timing context of the work done before it. The failing pass's name is
attached to the propagated exception as ``failing_pass``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.log import get_logger
from .module import Module
from .verifier import verify_module

logger = get_logger("ir.passes")


def count_ops(module: Module) -> int:
    """Total number of operations in the module, at every nesting level."""
    total = 0

    def bump(_op) -> None:
        nonlocal total
        total += 1

    module.op.walk(bump)
    return total


class Pass:
    """Base class for module-level transformation passes."""

    #: Human-readable pass name; defaults to the class name.
    name: str = ""

    def run(self, module: Module) -> bool:
        """Transform ``module`` in place; return True if anything changed."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name or type(self).__name__


@dataclass
class PassRecord:
    """One pass execution: timing and (when observed) op-count delta."""

    name: str
    seconds: float
    changed: bool
    failed: bool = False
    #: op counts are only collected while a tracer or metrics registry is
    #: installed — counting walks the whole module, which the untraced
    #: autotuning hot path cannot afford
    ops_before: Optional[int] = None
    ops_after: Optional[int] = None

    @property
    def op_delta(self) -> Optional[int]:
        if self.ops_before is None or self.ops_after is None:
            return None
        return self.ops_after - self.ops_before


class PassManager:
    """Runs a sequence of passes, optionally verifying after each."""

    def __init__(self, passes: Iterable[Pass] = (), verify: bool = True):
        self.passes: List[Pass] = list(passes)
        self.verify = verify
        #: names of the passes that reported a change during the last run
        self.changed_passes: List[str] = []
        #: per-pass records of the last :meth:`run` (failures included)
        self.records: List[PassRecord] = []
        #: per-pass wall time accumulated over this manager's lifetime
        self.pass_seconds: Dict[str, float] = {}

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def _finish(self, record: PassRecord, span) -> None:
        self.records.append(record)
        self.pass_seconds[record.name] = \
            self.pass_seconds.get(record.name, 0.0) + record.seconds
        delta = record.op_delta
        if delta is not None:
            span.set(changed=record.changed, ops_before=record.ops_before,
                     ops_after=record.ops_after, op_delta=delta)
            obs_metrics.observe("pass.%s.op_delta" % record.name, delta)
            obs_metrics.observe("pass.%s.seconds" % record.name,
                                record.seconds)

    def _run_one(self, pass_: Pass, module: Module) -> bool:
        """Run a single pass over ``module``, recording its outcome."""
        name = str(pass_)
        observing = obs_tracer.enabled() or obs_metrics.enabled()
        before = count_ops(module) if observing else None
        span = obs_tracer.span("pass:%s" % name, category="pass")
        start = time.perf_counter()
        try:
            with span:
                changed = pass_.run(module)
                if self.verify:
                    verify_module(module)
                after = count_ops(module) if observing else None
                self._finish(PassRecord(name,
                                        time.perf_counter() - start,
                                        changed, ops_before=before,
                                        ops_after=after), span)
        except Exception as error:
            elapsed = time.perf_counter() - start
            after = count_ops(module) if observing else None
            self._finish(PassRecord(name, elapsed, False, failed=True,
                                    ops_before=before, ops_after=after),
                         obs_tracer.NULL_SPAN)
            if getattr(error, "failing_pass", None) is None:
                try:
                    error.failing_pass = name
                except AttributeError:
                    pass  # exceptions with __slots__ cannot carry it
            logger.debug("pass %s failed after %.6fs: %s",
                         name, elapsed, error)
            raise
        if changed:
            self.changed_passes.append(name)
        return changed

    def run(self, module: Module) -> bool:
        self.changed_passes = []
        self.records = []
        changed_any = False
        for pass_ in self.passes:
            if self._run_one(pass_, module):
                changed_any = True
        return changed_any

    def run_until_fixpoint(self, module: Module, max_iterations: int = 16
                           ) -> None:
        """Re-run the pipeline until no pass reports a change."""
        for _ in range(max_iterations):
            if not self.run(module):
                return

    def run_modules_until_fixpoint(self, modules: Iterable[Module],
                                   max_iterations: int = 16) -> None:
        """Drive each module to its own pipeline fixpoint, round-robin.

        Per module, passes run cyclically with per-pass change tracking:
        the loop stops as soon as ``len(passes)`` *consecutive* pass runs
        report no change. A no-change run leaves the IR untouched, so the
        sequence of mutating pass applications — and therefore the final
        IR — is identical to :meth:`run_until_fixpoint`; an already-clean
        module exits after exactly one sweep instead of re-running the
        whole pipeline to confirm the fixpoint.
        """
        num_passes = len(self.passes)
        self.changed_passes = []
        self.records = []
        if num_passes == 0:
            return
        for module in modules:
            clean_streak = 0
            budget = max_iterations * num_passes
            while clean_streak < num_passes and budget > 0:
                for pass_ in self.passes:
                    if self._run_one(pass_, module):
                        clean_streak = 0
                    else:
                        clean_streak += 1
                    budget -= 1
                    if clean_streak >= num_passes or budget <= 0:
                        break
