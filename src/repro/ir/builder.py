"""Insertion-point based IR builder, mirroring MLIR's ``OpBuilder``."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Sequence

from .core import Block, Operation, Region, Value
from .types import Type


class Builder:
    """Creates operations at a movable insertion point.

    The insertion point is a ``(block, index)`` pair; newly inserted ops go
    before ``index`` and advance it, so consecutive ``insert`` calls emit ops
    in program order.
    """

    def __init__(self, block: Optional[Block] = None,
                 index: Optional[int] = None):
        self.block = block
        self.index = len(block.ops) if (block is not None and index is None) \
            else (index or 0)

    # -- insertion point management ----------------------------------------

    def set_insertion_point_to_end(self, block: Block) -> None:
        self.block = block
        self.index = len(block.ops)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self.block = block
        self.index = 0

    def set_insertion_point_before(self, op: Operation) -> None:
        assert op.parent is not None
        self.block = op.parent
        self.index = op.parent.index_of(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        assert op.parent is not None
        self.block = op.parent
        self.index = op.parent.index_of(op) + 1

    @contextmanager
    def at_end(self, block: Block):
        """Temporarily move the insertion point to the end of ``block``."""
        saved = (self.block, self.index)
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self.block, self.index = saved

    @contextmanager
    def at_start(self, block: Block):
        saved = (self.block, self.index)
        self.set_insertion_point_to_start(block)
        try:
            yield self
        finally:
            self.block, self.index = saved

    # -- op creation ----------------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        self.block.insert(self.index, op)
        self.index += 1
        return op

    def create(self, name: str,
               operands: Sequence[Value] = (),
               result_types: Sequence[Type] = (),
               attributes: Optional[Dict[str, object]] = None,
               regions: Sequence[Region] = ()) -> Operation:
        return self.insert(Operation(name, operands, result_types,
                                     attributes, regions))
