"""A module facade over one region, for region-scoped pass pipelines.

Cleaning the freshly coarsened regions of a ``polygeist.alternatives`` op
through the whole-module pipeline re-walks the entire module once per
tuned wrapper — the dominant cost of alternative generation at scale. A
:class:`RegionModule` wraps a single region in a synthetic
``builtin.module`` op so the standard passes (which only ever consume
``module.op`` / ``module.body`` and walk downward) run over just that
region.

The wrapped region is **not** re-parented: ``region.parent`` keeps
pointing at the owning op (e.g. the alternatives op), so the facade can
be used on live IR and discarded afterwards. The facade additionally
exposes the enclosing nesting path so scope-sensitive passes (CSE) can
seed their outer-scope tables exactly as a whole-module run would have.
"""

from __future__ import annotations

from typing import List, Tuple

from .core import Block, Operation, Region


class RegionModule:
    """Duck-types :class:`~repro.ir.module.Module` for one region.

    Only valid for single-block regions (all structured IR in this
    project) whose owning op is attached to a real module; passes must
    only walk downward from ``op`` / ``body``, which every pass in the
    cleanup pipeline does.
    """

    def __init__(self, region: Region):
        if not region.blocks:
            raise ValueError("RegionModule needs a region with a block")
        facade = Operation.__new__(Operation)
        facade.name = "builtin.module"
        facade.attributes = {}
        facade.parent = None
        facade._operands = []
        facade.results = []
        # deliberately bypasses add_region: the region stays owned by its
        # real parent op
        facade.regions = [region]
        self.op = facade
        self.region = region

    @property
    def body(self) -> Block:
        return self.region.blocks[0]

    def enclosing_scope_blocks(self) -> List[Tuple[Block, Operation]]:
        """The nesting path from the root down to the wrapped region.

        Returns ``(block, op_on_path)`` pairs, outermost first: ``block``
        encloses the region and ``op_on_path`` is the op in that block
        through which the nesting descends. Ops *before* ``op_on_path``
        in ``block`` are exactly the ones a whole-module pass run would
        have seen before entering the region.
        """
        path: List[Tuple[Block, Operation]] = []
        op = self.region.parent
        while op is not None and op.parent is not None:
            path.append((op.parent, op))
            op = op.parent_op
        path.reverse()
        return path
