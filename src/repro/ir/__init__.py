"""Mini-MLIR IR infrastructure used throughout the reproduction."""

from .builder import Builder
from .core import (Block, BlockArgument, Operation, OpResult, Region, Use,
                   Value, single_block_region)
from .module import Module
from .parser import ParseError, parse_module, parse_op, parse_type
from .pass_manager import Pass, PassManager, PassRecord, count_ops
from .printer import format_attr, print_module, print_op
from .scoped import RegionModule
from .types import (DYNAMIC, F32, F64, I1, I8, I16, I32, I64, INDEX,
                    FloatType, FunctionType, IndexType, IntegerType,
                    MemRefType, Type, byte_width, is_scalar)
from .verifier import (VerificationError, register_op_verifier, verify_module,
                       verify_op)

__all__ = [
    "Block", "BlockArgument", "Builder", "DYNAMIC", "F32", "F64",
    "FloatType", "FunctionType", "I1", "I16", "I32", "I64", "I8", "INDEX",
    "IndexType", "IntegerType", "MemRefType", "Module", "Operation",
    "OpResult", "ParseError", "Pass", "PassManager", "PassRecord",
    "Region", "RegionModule", "Type",
    "Use", "Value", "VerificationError", "byte_width", "count_ops",
    "format_attr",
    "is_scalar", "parse_module", "parse_op", "parse_type", "print_module",
    "print_op", "register_op_verifier", "single_block_region",
    "verify_module", "verify_op",
]
