"""Core IR data structures: values, operations, blocks, and regions.

This is a deliberately small re-implementation of the MLIR object model that
Polygeist-GPU is built on:

* :class:`Value` — an SSA value, either an :class:`OpResult` or a
  :class:`BlockArgument` (e.g. a parallel-loop induction variable).
* :class:`Operation` — a generic operation identified by a dialect-qualified
  name (``"scf.parallel"``, ``"polygeist.barrier"``, ...), with operands,
  results, an attribute dictionary, and nested regions.
* :class:`Block` / :class:`Region` — structured nesting. All ops used in this
  project are *structured* (no branch terminators between blocks), so regions
  hold a single block almost everywhere.

Use-def chains are explicit: every value knows its uses, and operand mutation
goes through :meth:`Operation.set_operand` so the chains stay consistent.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from .types import Type


class Value:
    """An SSA value with a type and explicit use list."""

    def __init__(self, type_: Type, name_hint: str = ""):
        self.type = type_
        self.name_hint = name_hint
        #: list of (operation, operand_index) pairs referencing this value
        self.uses: List["Use"] = []

    @property
    def users(self) -> List["Operation"]:
        """Operations that use this value (with duplicates removed, in order)."""
        seen = []
        for use in self.uses:
            if use.owner not in seen:
                seen.append(use.owner)
        return seen

    def has_uses(self) -> bool:
        return bool(self.uses)

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of ``self`` to use ``other`` instead."""
        if other is self:
            return
        for use in list(self.uses):
            use.owner.set_operand(use.index, other)

    def replace_uses_if(self, other: "Value",
                        predicate: Callable[["Operation"], bool]) -> None:
        """Replace uses whose owning operation satisfies ``predicate``."""
        for use in list(self.uses):
            if predicate(use.owner):
                use.owner.set_operand(use.index, other)

    def __repr__(self) -> str:
        hint = self.name_hint or "v"
        return "<%s %%%s: %s>" % (type(self).__name__, hint, self.type)


class Use:
    """A single operand slot referencing a value."""

    __slots__ = ("owner", "index")

    def __init__(self, owner: "Operation", index: int):
        self.owner = owner
        self.index = index


class OpResult(Value):
    """A value produced by an operation."""

    def __init__(self, owner: "Operation", index: int, type_: Type,
                 name_hint: str = ""):
        super().__init__(type_, name_hint)
        self.owner = owner
        self.index = index


class BlockArgument(Value):
    """A value introduced by a block (e.g. a loop induction variable)."""

    def __init__(self, owner: "Block", index: int, type_: Type,
                 name_hint: str = ""):
        super().__init__(type_, name_hint)
        self.owner = owner
        self.index = index


#: process-wide counter backing :meth:`Operation.stable_uid`
_STABLE_UID_COUNTER = itertools.count(1)


class Operation:
    """A generic operation.

    Operations are created through :meth:`create` (or the dialect helper
    functions) and inserted into blocks via :class:`~repro.ir.builder.Builder`
    or :meth:`Block.append`.
    """

    def __init__(self, name: str,
                 operands: Sequence[Value] = (),
                 result_types: Sequence[Type] = (),
                 attributes: Optional[Dict[str, object]] = None,
                 regions: Sequence["Region"] = ()):
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.parent: Optional[Block] = None
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.regions: List[Region] = []
        for region in regions:
            self.add_region(region)
        for value in operands:
            self._append_operand(value)

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, name: str,
               operands: Sequence[Value] = (),
               result_types: Sequence[Type] = (),
               attributes: Optional[Dict[str, object]] = None,
               regions: Sequence["Region"] = ()) -> "Operation":
        return cls(name, operands, result_types, attributes, regions)

    def add_region(self, region: "Region") -> "Region":
        region.parent = self
        self.regions.append(region)
        return region

    # -- operands ----------------------------------------------------------

    @property
    def operands(self) -> List[Value]:
        """A copy of the operand list (mutate via :meth:`set_operand`)."""
        return list(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.uses.append(Use(self, index))

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        for use in old.uses:
            if use.owner is self and use.index == index:
                old.uses.remove(use)
                break
        self._operands[index] = value
        value.uses.append(Use(self, index))

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        """Replace any operand found in ``mapping`` with its image."""
        for i, operand in enumerate(self._operands):
            if operand in mapping:
                self.set_operand(i, mapping[operand])

    def drop_all_operand_uses(self) -> None:
        # each (owner, index) pair occurs at most once in a use list (see
        # set_operand), so delete-first-match suffices; this runs once per
        # erased op per operand, and most SSA values have few uses, so the
        # early exit beats rebuilding the list
        for i, operand in enumerate(self._operands):
            uses = operand.uses
            for j, use in enumerate(uses):
                if use.owner is self and use.index == i:
                    del uses[j]
                    break
        self._operands = []

    # -- results -----------------------------------------------------------

    def result(self, index: int = 0) -> OpResult:
        return self.results[index]

    @property
    def num_results(self) -> int:
        return len(self.results)

    # -- attributes ----------------------------------------------------------

    def attr(self, name: str, default=None):
        return self.attributes.get(name, default)

    # -- identity ------------------------------------------------------------

    def stable_uid(self) -> int:
        """A process-unique integer identity for this operation.

        Unlike ``id()``, the value is never reused after the operation is
        garbage-collected, so it is safe as a long-lived cache key (e.g.
        memoized :class:`~repro.simulator.model.KernelModel` instances).
        Clones do not inherit it: each operation object gets its own uid on
        first request.
        """
        uid = self.__dict__.get("_stable_uid")
        if uid is None:
            uid = next(_STABLE_UID_COUNTER)
            self._stable_uid = uid
        return uid

    # -- structure -----------------------------------------------------------

    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    def ancestors(self) -> Iterator["Operation"]:
        op = self.parent_op
        while op is not None:
            yield op
            op = op.parent_op

    def is_ancestor_of(self, other: "Operation") -> bool:
        """True if ``other`` is nested (transitively) inside ``self``."""
        return any(a is self for a in other.ancestors())

    def region(self, index: int = 0) -> "Region":
        return self.regions[index]

    def body_block(self, region_index: int = 0) -> "Block":
        """The single block of the given region (structured ops)."""
        return self.regions[region_index].blocks[0]

    # -- mutation ------------------------------------------------------------

    def detach(self) -> None:
        """Remove from the parent block without touching uses."""
        if self.parent is not None:
            self.parent.ops.remove(self)
            self.parent = None

    def erase(self) -> None:
        """Detach and drop all operand uses. Results must be unused."""
        for result in self.results:
            if result.has_uses():
                raise ValueError(
                    "erasing %s whose result still has uses" % self.name)
        if not self.regions:
            self.drop_all_operand_uses()
            self.detach()
            return
        # subtree erase: values defined inside die wholesale, so only
        # uses of values defined *outside* need unlinking — and each
        # such value's use list is rebuilt once, instead of scanned once
        # per erased use (quadratic for high-fan-out values like
        # constants feeding a large erased nest)
        dead_ops = set()
        internal = set()
        ops = []
        stack = [self]
        while stack:
            op = stack.pop()
            dead_ops.add(id(op))
            ops.append(op)
            for result in op.results:
                internal.add(id(result))
            for region in op.regions:
                for block in region.blocks:
                    for arg in block.args:
                        internal.add(id(arg))
                    stack.extend(block.ops)
        touched = {}
        for op in ops:
            for operand in op._operands:
                key = id(operand)
                if key not in internal and key not in touched:
                    touched[key] = operand
            op._operands = []
        for operand in touched.values():
            operand.uses = [use for use in operand.uses
                            if id(use.owner) not in dead_ops]
        self.detach()

    def replace_all_uses_with(self, values: Sequence[Value]) -> None:
        if len(values) != len(self.results):
            raise ValueError("result count mismatch in replacement")
        for result, value in zip(self.results, values):
            result.replace_all_uses_with(value)

    # -- traversal -------------------------------------------------------------

    def walk(self, callback: Callable[["Operation"], None],
             include_self: bool = True) -> None:
        """Post-order walk over this op and everything nested inside it."""
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.walk(callback)
        if include_self:
            callback(self)

    def walk_preorder(self, callback: Callable[["Operation"], None],
                      include_self: bool = True) -> None:
        if include_self:
            callback(self)
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.walk_preorder(callback)

    def ops_matching(self, name: str) -> List["Operation"]:
        """All nested ops (including self) with the given name."""
        found: List[Operation] = []
        self.walk_preorder(lambda op: found.append(op) if op.name == name
                           else None)
        return found

    # -- cloning -----------------------------------------------------------------

    def clone(self, value_map: Optional[Dict[Value, Value]] = None
              ) -> "Operation":
        """Deep-copy this operation.

        ``value_map`` maps values defined *outside* the clone to replacements;
        it is updated with the results and nested block arguments of the clone
        so callers can chain clones.

        Cloning is the hottest allocation path of alternative generation
        (every coarsening candidate clones the whole wrapper), so objects
        are built via ``__new__`` and field stores rather than the checked
        constructors. ``_stable_uid`` is deliberately not carried over:
        clones get their own uid on first request.
        """
        if value_map is None:
            value_map = {}
        vget = value_map.get
        new_op = Operation.__new__(Operation)
        new_op.name = self.name
        attributes = self.attributes
        new_op.attributes = dict(attributes) if attributes else {}
        new_op.parent = None
        operands = [vget(v, v) for v in self._operands]
        new_op._operands = operands
        new_results: List[OpResult] = []
        for index, old in enumerate(self.results):
            result = OpResult.__new__(OpResult)
            result.type = old.type
            result.name_hint = old.name_hint
            result.uses = []
            result.owner = new_op
            result.index = index
            value_map[old] = result
            new_results.append(result)
        new_op.results = new_results
        for index, value in enumerate(operands):
            value.uses.append(Use(new_op, index))
        new_regions: List[Region] = []
        for region in self.regions:
            new_region = Region.__new__(Region)
            new_region.parent = new_op
            new_blocks: List[Block] = []
            for block in region.blocks:
                new_block = Block.__new__(Block)
                new_block.parent = new_region
                new_args: List[BlockArgument] = []
                for index, old_arg in enumerate(block.args):
                    arg = BlockArgument.__new__(BlockArgument)
                    arg.type = old_arg.type
                    arg.name_hint = old_arg.name_hint
                    arg.uses = []
                    arg.owner = new_block
                    arg.index = index
                    value_map[old_arg] = arg
                    new_args.append(arg)
                new_block.args = new_args
                new_ops: List[Operation] = []
                for child in block.ops:
                    cloned = child.clone(value_map)
                    cloned.parent = new_block
                    new_ops.append(cloned)
                new_block.ops = new_ops
                new_blocks.append(new_block)
            new_region.blocks = new_blocks
            new_regions.append(new_region)
        new_op.regions = new_regions
        return new_op

    def __repr__(self) -> str:
        return "<Operation %s>" % self.name


class Block:
    """A sequence of operations with block arguments."""

    def __init__(self, arg_types: Sequence[Type] = (),
                 arg_names: Sequence[str] = ()):
        self.parent: Optional[Region] = None
        self.ops: List[Operation] = []
        names = list(arg_names) + [""] * (len(arg_types) - len(arg_names))
        self.args: List[BlockArgument] = [
            BlockArgument(self, i, t, names[i])
            for i, t in enumerate(arg_types)
        ]

    def arg(self, index: int) -> BlockArgument:
        return self.args[index]

    def add_argument(self, type_: Type, name_hint: str = "") -> BlockArgument:
        arg = BlockArgument(self, len(self.args), type_, name_hint)
        self.args.append(arg)
        return arg

    def append(self, op: Operation) -> Operation:
        if op.parent is not None and op.parent is not self:
            raise ValueError(
                "cannot append %s: it already belongs to another block "
                "(detach it first)" % op.name)
        op.parent = self
        self.ops.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        if op.parent is not None and op.parent is not self:
            raise ValueError(
                "cannot insert %s: it already belongs to another block "
                "(detach it first)" % op.name)
        op.parent = self
        self.ops.insert(index, op)
        return op

    def index_of(self, op: Operation) -> int:
        for i, candidate in enumerate(self.ops):
            if candidate is op:
                return i
        raise ValueError("operation not in block")

    @property
    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return "<Block with %d ops>" % len(self.ops)


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, blocks: Iterable[Block] = ()):
        self.parent: Optional[Operation] = None
        self.blocks: List[Block] = []
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: Block) -> Block:
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        return "<Region with %d blocks>" % len(self.blocks)


def single_block_region(arg_types: Sequence[Type] = (),
                        arg_names: Sequence[str] = ()) -> Region:
    """Convenience: a region holding one fresh block."""
    region = Region()
    region.add_block(Block(arg_types, arg_names))
    return region
