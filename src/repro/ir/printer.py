"""Textual printer for the IR (generic op form, MLIR-flavoured).

The printed form round-trips through :mod:`repro.ir.parser`:

.. code-block:: text

    %c0 = "arith.constant"() {value = 0} : () -> (index)
    "scf.parallel"(%c0, %n, %c1) {gpu.kind = "blocks"} : (index, index, index) -> () ({
    ^(%b: index):
      ...
    })
"""

from __future__ import annotations

from typing import Dict, List

from .core import Block, Operation, Region, Value
from .module import Module
from .types import Type


class _NameTable:
    """Assigns unique printable names to SSA values."""

    def __init__(self):
        self._names: Dict[Value, str] = {}
        self._used: Dict[str, int] = {}

    def name(self, value: Value) -> str:
        if value not in self._names:
            base = value.name_hint or "v"
            count = self._used.get(base, 0)
            self._used[base] = count + 1
            self._names[value] = base if count == 0 else "%s_%d" % (base, count)
        return "%" + self._names[value]


def format_attr(value: object) -> str:
    """Render an attribute value in the restricted attribute grammar."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return '"%s"' % value.replace("\\", "\\\\").replace('"', '\\"')
    if isinstance(value, (list, tuple)):
        return "[%s]" % ", ".join(format_attr(v) for v in value)
    if isinstance(value, Type):
        return "!%s" % value
    raise TypeError("unprintable attribute %r" % (value,))


def _format_attrs(attributes: Dict[str, object]) -> str:
    if not attributes:
        return ""
    parts = ["%s = %s" % (k, format_attr(v))
             for k, v in sorted(attributes.items())]
    return " {%s}" % ", ".join(parts)


class Printer:
    def __init__(self):
        self.names = _NameTable()
        self.lines: List[str] = []

    def print_op(self, op: Operation, indent: int) -> None:
        pad = "  " * indent
        results = ", ".join(self.names.name(r) for r in op.results)
        prefix = "%s = " % results if op.results else ""
        operands = ", ".join(self.names.name(o) for o in op.operands)
        in_types = ", ".join(str(o.type) for o in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        line = '%s%s"%s"(%s)%s : (%s) -> (%s)' % (
            pad, prefix, op.name, operands, _format_attrs(op.attributes),
            in_types, out_types)
        if not op.regions:
            self.lines.append(line)
            return
        self.lines.append(line + " (")
        for i, region in enumerate(op.regions):
            self.print_region(region, indent + 1)
            if i + 1 < len(op.regions):
                self.lines[-1] += ","
        self.lines.append(pad + ")")

    def print_region(self, region: Region, indent: int) -> None:
        pad = "  " * indent
        self.lines.append(pad + "{")
        for block in region.blocks:
            self.print_block(block, indent + 1)
        self.lines.append(pad + "}")

    def print_block(self, block: Block, indent: int) -> None:
        pad = "  " * indent
        if block.args:
            args = ", ".join("%s: %s" % (self.names.name(a), a.type)
                             for a in block.args)
            self.lines.append("%s^(%s):" % (pad, args))
        for op in block.ops:
            self.print_op(op, indent)


def print_op(op: Operation) -> str:
    printer = Printer()
    printer.print_op(op, 0)
    return "\n".join(printer.lines)


def print_module(module: Module) -> str:
    return print_op(module.op)
