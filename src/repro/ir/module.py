"""Top-level module container (the analog of ``builtin.module``)."""

from __future__ import annotations

from typing import List, Optional

from .core import Block, Operation, Region, single_block_region


class Module:
    """A top-level container of functions and globals.

    Internally a :class:`Operation` named ``builtin.module`` with one region,
    wrapped for convenience accessors.
    """

    def __init__(self, op: Optional[Operation] = None):
        if op is None:
            op = Operation("builtin.module", regions=[single_block_region()])
        if op.name != "builtin.module":
            raise ValueError("module op must be builtin.module")
        self.op = op

    @property
    def body(self) -> Block:
        return self.op.body_block()

    @property
    def funcs(self) -> List[Operation]:
        return [op for op in self.body.ops if op.name == "func.func"]

    def func(self, symbol: str) -> Operation:
        """Look up a function by its symbol name."""
        for op in self.body.ops:
            if op.name == "func.func" and op.attr("sym_name") == symbol:
                return op
        raise KeyError("no function named %r in module" % symbol)

    def has_func(self, symbol: str) -> bool:
        return any(op.name == "func.func" and op.attr("sym_name") == symbol
                   for op in self.body.ops)

    def globals_(self) -> List[Operation]:
        return [op for op in self.body.ops if op.name == "memref.global"]

    def global_(self, symbol: str) -> Operation:
        for op in self.body.ops:
            if op.name == "memref.global" and op.attr("sym_name") == symbol:
                return op
        raise KeyError("no global named %r in module" % symbol)

    def clone(self) -> "Module":
        return Module(self.op.clone())

    def __str__(self) -> str:
        from .printer import print_module
        return print_module(self)

    def __repr__(self) -> str:
        return "<Module with %d top-level ops>" % len(self.body.ops)
