"""Type system for the mini-MLIR IR.

Types are immutable value objects: two structurally identical types compare
equal and hash equally, so they can be freely shared and used as dict keys.
The set of types mirrors what Polygeist-GPU needs to represent CUDA kernels:
integers, floats, ``index`` (loop induction arithmetic), memrefs with a
memory space (global / shared / local), and function types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Marker for a dynamic dimension in a memref shape (mirrors MLIR's ``?``).
DYNAMIC = -1


class Type:
    """Base class for all IR types."""

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError


@dataclass(frozen=True)
class IntegerType(Type):
    """An integer type of a fixed bit width, e.g. ``i1``, ``i32``, ``i64``."""

    width: int

    def __str__(self) -> str:
        return "i%d" % self.width


@dataclass(frozen=True)
class FloatType(Type):
    """A floating point type: ``f32`` or ``f64``."""

    width: int

    def __str__(self) -> str:
        return "f%d" % self.width


@dataclass(frozen=True)
class IndexType(Type):
    """The platform index type used for loop bounds and subscripts."""

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True)
class MemRefType(Type):
    """A reference to a shaped memory buffer.

    ``shape`` entries are extents, with :data:`DYNAMIC` for unknown sizes.
    ``memory_space`` distinguishes GPU address spaces; it is central to this
    reproduction because block coarsening duplicates *shared* allocations
    while leaving global memory untouched.
    """

    shape: Tuple[int, ...]
    element: Type
    memory_space: str = "global"

    def __str__(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        prefix = dims + "x" if self.shape else ""
        if self.memory_space == "global":
            return "memref<%s%s>" % (prefix, self.element)
        return "memref<%s%s, %s>" % (prefix, self.element, self.memory_space)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    def num_elements(self) -> int:
        """Total element count; requires a fully static shape."""
        if not self.has_static_shape:
            raise ValueError("num_elements() on dynamic shape %s" % self)
        total = 1
        for d in self.shape:
            total *= d
        return total

    def size_bytes(self) -> int:
        """Total byte size; requires a static shape and a sized element."""
        return self.num_elements() * byte_width(self.element)


@dataclass(frozen=True)
class FunctionType(Type):
    """The type of a function: inputs -> results."""

    inputs: Tuple[Type, ...] = field(default_factory=tuple)
    results: Tuple[Type, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return "(%s) -> (%s)" % (ins, outs)


# Commonly used singleton-ish instances.
I1 = IntegerType(1)
I8 = IntegerType(8)
I16 = IntegerType(16)
I32 = IntegerType(32)
I64 = IntegerType(64)
F32 = FloatType(32)
F64 = FloatType(64)
INDEX = IndexType()


def byte_width(type_: Type) -> int:
    """Size in bytes of a scalar type as stored in memory."""
    if isinstance(type_, IntegerType):
        return max(1, type_.width // 8)
    if isinstance(type_, FloatType):
        return type_.width // 8
    if isinstance(type_, IndexType):
        return 8
    raise ValueError("type %s has no byte width" % type_)


def is_scalar(type_: Type) -> bool:
    """True for types that fit in a register."""
    return isinstance(type_, (IntegerType, FloatType, IndexType))
