"""Parser for the generic textual IR form produced by the printer.

The grammar intentionally matches :mod:`repro.ir.printer` exactly, so
``parse_module(print_module(m))`` reconstructs an equivalent module. The
parser works on a character cursor so types (``memref<16x16xf32, shared>``)
can be parsed in-place without a separate lexer mode.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .core import Block, Operation, Region, Value
from .module import Module
from .types import (DYNAMIC, FloatType, FunctionType, IndexType, IntegerType,
                    MemRefType, Type)

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_.$]*")
_NUMBER = re.compile(r"-?\d+(\.\d+(e[+-]?\d+)?)?", re.IGNORECASE)


class ParseError(ValueError):
    """Raised on malformed IR text, with position information."""

    def __init__(self, message: str, text: str, pos: int):
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        super().__init__("%s at line %d, column %d" % (message, line, col))


class _Cursor:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif text.startswith("//", self.pos):
                end = text.find("\n", self.pos)
                self.pos = n if end == -1 else end + 1
            else:
                break

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        self.skip_ws()
        return self.text.startswith(literal, self.pos)

    def accept(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise ParseError("expected %r" % literal, self.text, self.pos)

    def ident(self) -> str:
        self.skip_ws()
        match = _IDENT.match(self.text, self.pos)
        if not match:
            raise ParseError("expected identifier", self.text, self.pos)
        self.pos = match.end()
        return match.group()

    def number(self):
        self.skip_ws()
        match = _NUMBER.match(self.text, self.pos)
        if not match:
            raise ParseError("expected number", self.text, self.pos)
        self.pos = match.end()
        text = match.group()
        return float(text) if ("." in text or "e" in text or "E" in text) \
            else int(text)

    def string(self) -> str:
        self.skip_ws()
        if not self.accept('"'):
            raise ParseError("expected string", self.text, self.pos)
        out = []
        while True:
            if self.pos >= len(self.text):
                raise ParseError("unterminated string", self.text, self.pos)
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                out.append(self.text[self.pos])
                self.pos += 1
            else:
                out.append(ch)


def parse_type(cursor: _Cursor) -> Type:
    cursor.skip_ws()
    if cursor.accept("("):
        inputs: List[Type] = []
        if not cursor.peek(")"):
            inputs.append(parse_type(cursor))
            while cursor.accept(","):
                inputs.append(parse_type(cursor))
        cursor.expect(")")
        cursor.expect("->")
        cursor.expect("(")
        results: List[Type] = []
        if not cursor.peek(")"):
            results.append(parse_type(cursor))
            while cursor.accept(","):
                results.append(parse_type(cursor))
        cursor.expect(")")
        return FunctionType(tuple(inputs), tuple(results))
    name = cursor.ident()
    if name == "index":
        return IndexType()
    if name == "memref":
        cursor.expect("<")
        shape: List[int] = []
        element: Optional[Type] = None
        while True:
            cursor.skip_ws()
            if cursor.accept("?"):
                shape.append(DYNAMIC)
                cursor.expect("x")
                continue
            match = re.match(r"\d+", cursor.text[cursor.pos:])
            if match and cursor.text[cursor.pos + match.end():
                                     cursor.pos + match.end() + 1] == "x":
                shape.append(int(match.group()))
                cursor.pos += match.end() + 1
                continue
            element = parse_type(cursor)
            break
        space = "global"
        if cursor.accept(","):
            space = cursor.ident()
        cursor.expect(">")
        return MemRefType(tuple(shape), element, space)
    match = re.fullmatch(r"i(\d+)", name)
    if match:
        return IntegerType(int(match.group(1)))
    match = re.fullmatch(r"f(\d+)", name)
    if match:
        return FloatType(int(match.group(1)))
    raise ParseError("unknown type %r" % name, cursor.text, cursor.pos)


def _parse_attr_value(cursor: _Cursor):
    cursor.skip_ws()
    if cursor.accept("!"):
        return parse_type(cursor)
    if cursor.peek('"'):
        return cursor.string()
    if cursor.accept("["):
        items = []
        if not cursor.peek("]"):
            items.append(_parse_attr_value(cursor))
            while cursor.accept(","):
                items.append(_parse_attr_value(cursor))
        cursor.expect("]")
        return items
    if cursor.peek("true"):
        cursor.expect("true")
        return True
    if cursor.peek("false"):
        cursor.expect("false")
        return False
    if cursor.peek("none"):
        cursor.expect("none")
        return None
    return cursor.number()


class _OpParser:
    def __init__(self, text: str):
        self.cursor = _Cursor(text)
        self.values: Dict[str, Value] = {}

    def value_name(self) -> str:
        self.cursor.expect("%")
        return self.cursor.ident()

    def parse_op(self) -> Operation:
        cursor = self.cursor
        result_names: List[str] = []
        if cursor.peek("%"):
            result_names.append(self.value_name())
            while cursor.accept(","):
                result_names.append(self.value_name())
            cursor.expect("=")
        op_name = cursor.string()
        cursor.expect("(")
        operand_names: List[str] = []
        if not cursor.peek(")"):
            operand_names.append(self.value_name())
            while cursor.accept(","):
                operand_names.append(self.value_name())
        cursor.expect(")")
        attributes: Dict[str, object] = {}
        if cursor.accept("{"):
            if not cursor.peek("}"):
                while True:
                    key = cursor.ident()
                    cursor.expect("=")
                    attributes[key] = _parse_attr_value(cursor)
                    if not cursor.accept(","):
                        break
            cursor.expect("}")
        cursor.expect(":")
        func_type = parse_type(cursor)
        if not isinstance(func_type, FunctionType):
            raise ParseError("expected a function type after ':'",
                             cursor.text, cursor.pos)
        operands = []
        for name, type_ in zip(operand_names, func_type.inputs):
            if name not in self.values:
                raise ParseError("use of undefined value %%%s" % name,
                                 cursor.text, cursor.pos)
            operands.append(self.values[name])
        op = Operation(op_name, operands, list(func_type.results), attributes)
        for name, result in zip(result_names, op.results):
            result.name_hint = name
            self.values[name] = result
        if cursor.accept("("):
            while True:
                op.add_region(self.parse_region())
                if not cursor.accept(","):
                    break
            cursor.expect(")")
        return op

    def parse_region(self) -> Region:
        cursor = self.cursor
        cursor.expect("{")
        block = Block()
        if cursor.accept("^"):
            cursor.expect("(")
            if not cursor.peek(")"):
                while True:
                    name = self.value_name()
                    cursor.expect(":")
                    type_ = parse_type(cursor)
                    arg = block.add_argument(type_, name)
                    self.values[name] = arg
                    if not cursor.accept(","):
                        break
            cursor.expect(")")
            cursor.expect(":")
        while not cursor.peek("}"):
            block.append(self.parse_op())
        cursor.expect("}")
        region = Region()
        region.add_block(block)
        return region


def parse_op(text: str) -> Operation:
    """Parse a single (possibly region-carrying) operation."""
    parser = _OpParser(text)
    op = parser.parse_op()
    if not parser.cursor.at_end():
        raise ParseError("trailing input", text, parser.cursor.pos)
    return op


def parse_module(text: str) -> Module:
    """Parse a whole module printed by :func:`print_module`."""
    return Module(parse_op(text))
