"""Structural IR verifier.

Checks the invariants every transform relies on:

* parent links of blocks/regions/ops are consistent;
* use-def chains are consistent (every operand slot is registered in the
  value's use list and vice versa);
* block terminators: a terminator op may only appear in the last position,
  and ops whose regions require one (per-dialect table) must actually *end*
  with an allowed terminator — a truncated ``scf``/``func`` region is a
  verification error, not a later lowering crash;
* SSA dominance for structured IR: an operand must be defined earlier in the
  same block or in a lexically enclosing block (region values are not visible
  outside their region);
* dialect-specific invariants registered through :func:`register_op_verifier`.

Dominance checking is *incremental*: one visible-value set is threaded
through a single walk of the IR (values are added as their defining ops are
passed and removed when their region is left), so verifying a module is
linear in its size instead of quadratic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .core import Block, Operation, Value
from .module import Module


class VerificationError(ValueError):
    pass


_OP_VERIFIERS: Dict[str, Callable[[Operation], None]] = {}


def register_op_verifier(name: str):
    """Decorator registering a per-op verifier for ops named ``name``."""
    def wrap(fn: Callable[[Operation], None]):
        _OP_VERIFIERS[name] = fn
        return fn
    return wrap


def _fail(op: Operation, message: str) -> None:
    raise VerificationError("%s: %s" % (op.name, message))


#: ops that terminate a block; they may only appear in the last position
_TERMINATOR_NAMES = {"scf.yield", "scf.condition", "func.return",
                     "gpu.module_end"}

#: per-dialect required-terminator table: ops whose region blocks must END
#: with one of the listed terminators. ``scf.while`` admits both of its
#: region terminators here; the registered ``scf.while`` verifier pins the
#: exact one per region. Region-carrying ops absent from this table
#: (``polygeist.gpu_wrapper``, ``polygeist.alternatives``,
#: ``builtin.module``) legitimately hold terminator-less blocks.
_REQUIRED_TERMINATORS: Dict[str, Tuple[str, ...]] = {
    "scf.for": ("scf.yield",),
    "scf.if": ("scf.yield",),
    "scf.parallel": ("scf.yield",),
    "scf.while": ("scf.condition", "scf.yield"),
    "func.func": ("func.return",),
    "gpu.module": ("gpu.module_end",),
}


def _check_terminators(op: Operation) -> None:
    required = _REQUIRED_TERMINATORS.get(op.name)
    for region in op.regions:
        for block in region.blocks:
            for child in block.ops[:-1]:
                if child.name in _TERMINATOR_NAMES:
                    _fail(child, "terminator in the middle of a block")
            if required is not None:
                last = block.ops[-1] if block.ops else None
                if last is None or last.name not in required:
                    _fail(op, "region block must end with %s, found %s" %
                          (" or ".join(required),
                           last.name if last is not None else "empty block"))


def _check_use_def(op: Operation) -> None:
    for i, operand in enumerate(op.operands):
        if not any(u.owner is op and u.index == i for u in operand.uses):
            _fail(op, "operand %d missing from use list of %r" % (i, operand))
    for result in op.results:
        for use in result.uses:
            if use.owner.operand(use.index) is not result:
                _fail(op, "stale use record on result")


def _visible_values(op: Operation) -> Set[Value]:
    """Values visible at ``op``: defined earlier in its block or enclosing.

    Only used to seed incremental verification of a *nested* op — the cost
    is proportional to the enclosing scope, paid once per :func:`verify_op`
    call instead of once per verified operation.
    """
    visible: Set[Value] = set()
    block: Optional[Block] = op.parent
    current: Operation = op
    while block is not None:
        visible.update(block.args)
        for candidate in block.ops:
            if candidate is current:
                break
            visible.update(candidate.results)
        parent_op = block.parent_op
        if parent_op is None:
            break
        current = parent_op
        block = parent_op.parent
    return visible


def _verify_tree(op: Operation, visible: Set[Value],
                 check_dominance: bool) -> None:
    """Verify ``op`` and its nested ops against the running visible set."""
    for region in op.regions:
        if region.parent is not op:
            _fail(op, "region parent link broken")
        for block in region.blocks:
            if block.parent is not region:
                _fail(op, "block parent link broken")
            for arg in block.args:
                if arg.owner is not block:
                    _fail(op, "block argument owner link broken")
            for child in block.ops:
                if child.parent is not block:
                    _fail(child, "op parent link broken")
    _check_use_def(op)
    _check_terminators(op)
    if check_dominance and op.parent is not None:
        for i, operand in enumerate(op.operands):
            if operand not in visible:
                _fail(op, "operand %d (%r) does not dominate use" %
                      (i, operand))
    verifier = _OP_VERIFIERS.get(op.name)
    if verifier is not None:
        try:
            verifier(op)
        except VerificationError:
            raise
        except ValueError as error:
            raise VerificationError("%s: %s" % (op.name, error)) from error
    for region in op.regions:
        for block in region.blocks:
            added: List[Value] = []
            for arg in block.args:
                if arg not in visible:
                    visible.add(arg)
                    added.append(arg)
            for child in block.ops:
                _verify_tree(child, visible, check_dominance)
                for result in child.results:
                    if result not in visible:
                        visible.add(result)
                        added.append(result)
            # region values are not visible outside their region
            for value in added:
                visible.discard(value)


def verify_op(op: Operation, check_dominance: bool = True) -> None:
    """Verify one operation and everything nested in it."""
    visible: Set[Value] = set()
    if check_dominance and op.parent is not None:
        visible = _visible_values(op)
    _verify_tree(op, visible, check_dominance)


def verify_module(module: Module) -> None:
    verify_op(module.op)
