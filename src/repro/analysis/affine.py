"""Affine decomposition of index expressions.

Expresses an index value as ``const + Σ coeff_i · sym_i`` where symbols are
SSA values the decomposition cannot see through (parallel ivs, loop ivs,
loaded values, function arguments). The memory model uses this to compute
the stride of a global access with respect to ``threadIdx.x`` — the quantity
that decides whether a warp's loads coalesce (§II-A2, Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir import OpResult, Value
from ..dialects import arith


@dataclass
class AffineForm:
    """``const + Σ terms[v] * v`` over symbol values ``v``."""

    const: int = 0
    terms: Dict[Value, int] = field(default_factory=dict)

    def add(self, other: "AffineForm", scale: int = 1) -> "AffineForm":
        result = AffineForm(self.const + scale * other.const,
                            dict(self.terms))
        for sym, coeff in other.terms.items():
            result.terms[sym] = result.terms.get(sym, 0) + scale * coeff
            if result.terms[sym] == 0:
                del result.terms[sym]
        return result

    def scaled(self, factor: int) -> "AffineForm":
        if factor == 0:
            return AffineForm(0)
        return AffineForm(self.const * factor,
                          {s: c * factor for s, c in self.terms.items()})

    def coefficient(self, value: Value) -> int:
        return self.terms.get(value, 0)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def __str__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for sym, coeff in self.terms.items():
            name = sym.name_hint or "v"
            parts.append("%d*%s" % (coeff, name))
        return " + ".join(parts) if parts else "0"


_MAX_DEPTH = 64


def affine_of(value: Value, depth: int = 0) -> AffineForm:
    """Affine decomposition of ``value``; always succeeds (opaque values
    become symbols with coefficient 1)."""
    if depth > _MAX_DEPTH:
        return AffineForm(0, {value: 1})
    if value.__class__ is OpResult:
        op = value.owner
        name = op.name
        if name == arith.CONSTANT:
            raw = op.attributes.get("value")
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                return AffineForm(0, {value: 1})
            return AffineForm(int(raw))
        operands = op._operands
        if name == "arith.addi":
            return affine_of(operands[0], depth + 1).add(
                affine_of(operands[1], depth + 1))
        if name == "arith.subi":
            return affine_of(operands[0], depth + 1).add(
                affine_of(operands[1], depth + 1), scale=-1)
        if name == "arith.muli":
            lhs = affine_of(operands[0], depth + 1)
            rhs = affine_of(operands[1], depth + 1)
            if lhs.is_constant:
                return rhs.scaled(lhs.const)
            if rhs.is_constant:
                return lhs.scaled(rhs.const)
            return AffineForm(0, {value: 1})
        if name == "arith.shli":
            lhs = affine_of(operands[0], depth + 1)
            rhs = affine_of(operands[1], depth + 1)
            if rhs.is_constant:
                return lhs.scaled(1 << rhs.const)
            return AffineForm(0, {value: 1})
        if name in ("arith.index_cast", "arith.extsi", "arith.extui"):
            return affine_of(operands[0], depth + 1)
        if name == "arith.divsi":
            lhs = affine_of(operands[0], depth + 1)
            rhs = affine_of(operands[1], depth + 1)
            if lhs.is_constant and rhs.is_constant and rhs.const != 0:
                q = abs(lhs.const) // abs(rhs.const)
                sign = 1 if (lhs.const >= 0) == (rhs.const >= 0) else -1
                return AffineForm(sign * q)
            return AffineForm(0, {value: 1})
    return AffineForm(0, {value: 1})


def stride_in(index: Value, variable: Value) -> Optional[int]:
    """Stride of ``index`` w.r.t. ``variable``, or None if unknown.

    The stride is known when ``variable`` appears as a plain affine term and
    none of the other symbols transitively depend on ``variable``.
    """
    from .uniformity import depends_on_values

    form = affine_of(index)
    coeff = form.coefficient(variable)
    for sym in form.terms:
        if sym is variable:
            continue
        if depends_on_values(sym, {variable}):
            return None
    return coeff
