"""Static analyses over the parallel IR.

These feed both the legality checks of the coarsening transformations
(uniformity w.r.t. parallel induction variables) and the performance model
(affine access strides for coalescing, closed-form operation statistics,
shared-memory accounting).
"""

from .affine import AffineForm, affine_of, stride_in
from .shared_memory import shared_bytes_per_block
from .stats import KernelStats, kernel_statistics
from .uniformity import contains_barrier, depends_on_values, is_uniform_in

__all__ = [
    "AffineForm", "KernelStats", "affine_of", "contains_barrier",
    "depends_on_values", "is_uniform_in", "kernel_statistics",
    "shared_bytes_per_block", "stride_in",
]
