"""Static analyses over the parallel IR.

These feed both the legality checks of the coarsening transformations
(uniformity w.r.t. parallel induction variables) and the performance model
(affine access strides for coalescing, closed-form operation statistics,
shared-memory accounting).
"""

from .affine import AffineForm, affine_of, stride_in
from .shared_memory import shared_allocas, shared_bytes_per_block
from .stats import KernelStats, kernel_statistics
from .uniformity import contains_barrier, depends_on_values, is_uniform_in

__all__ = [
    "AffineForm", "BenchmarkAnalysis", "CheckReport", "KernelReport",
    "KernelStats", "affine_of", "analyze_benchmark", "check_files",
    "compare_records", "contains_barrier", "depends_on_values",
    "is_uniform_in", "kernel_statistics", "shared_allocas",
    "shared_bytes_per_block", "stride_in",
]

#: report/check live behind a lazy import: they pull in the pipeline,
#: which itself imports this package for the static analyses above
_LAZY = {
    "BenchmarkAnalysis": "report", "KernelReport": "report",
    "analyze_benchmark": "report",
    "CheckReport": "check", "check_files": "check",
    "compare_records": "check",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError("module %r has no attribute %r" %
                             (__name__, name))
    from importlib import import_module
    return getattr(import_module("." + module, __name__), name)
