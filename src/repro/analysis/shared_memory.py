"""Shared-memory accounting for kernels in the parallel representation.

The alternatives pipeline (§VI) prunes coarsening configurations whose static
shared-memory requirement exceeds the target's per-block limit, *before* any
further compilation work — the paper's "early pruning" stage.
"""

from __future__ import annotations

from typing import List

from ..ir import MemRefType, Operation


def shared_allocas(block_parallel: Operation) -> List[Operation]:
    """All shared-space allocas inside a GPU block's body."""
    found: List[Operation] = []

    def check(op: Operation) -> None:
        if op.name == "memref.alloca":
            type_ = op.result().type
            if isinstance(type_, MemRefType) and \
                    type_.memory_space == "shared":
                found.append(op)

    block_parallel.walk_preorder(check, include_self=False)
    return found


def shared_bytes_per_block(block_parallel: Operation) -> int:
    """Total static shared memory allocated per GPU block, in bytes."""
    return sum(op.result().type.size_bytes()
               for op in shared_allocas(block_parallel))
