"""Bottleneck attribution reports: from raw observability streams to answers.

``analyze_benchmark`` runs one tuned/simulated composite (the same flow as
:func:`repro.benchsuite.base.simulate_composite`) with the full
observability stack installed — span tracer, metrics registry, TDO
decision log — and synthesizes everything the run produced into one
:class:`KernelReport` per kernel:

* **roofline position**: arithmetic intensity (FLOPs / DRAM bytes) against
  the architecture's ridge point, achieved GFLOP/s as a fraction of peak
  compute, achieved GB/s as a fraction of peak DRAM bandwidth;
* **a named bottleneck verdict** — ``memory-bound`` / ``occupancy-capped``
  / ``divergence`` / ``latency`` / ``compute-bound`` — with the supporting
  numbers (pipeline time split, occupancy and its limiter, coalescing
  efficiency, divergent branch count);
* **a "why the winner won" narrative** from the decision log: which stages
  eliminated the losers, the margin over the runner-up and the uncoarsened
  baseline, and what the winning config traded (occupancy for
  memory-level parallelism).

The tuning run uses a fresh, memory-only engine: a warm on-disk cache
would replay the winner without populating the decision log, and the
report's whole point is the decision evidence.

``repro analyze <bench> --arch …`` fronts this module; ``docs/ANALYZE.md``
documents the schema and methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: bumped when the JSON layout of a report changes shape
REPORT_SCHEMA = 1

#: occupancy below this fraction is "low" for bottleneck attribution
LOW_OCCUPANCY = 0.5


@dataclass
class Roofline:
    """Where one kernel sits against the architecture's roofline."""

    flops: float                    #: total modeled FLOPs over all launches
    dram_bytes: float               #: total DRAM traffic (reads + writes)
    arithmetic_intensity: float     #: FLOP per DRAM byte
    ridge_intensity: float          #: peak_flops / peak_bandwidth
    dtype: str                      #: "f32" or "f64" (dominant flop type)
    achieved_gflops: float
    peak_gflops: float
    pct_peak_flops: float           #: achieved/peak compute, in [0, 1]
    achieved_bandwidth_gbs: float
    peak_bandwidth_gbs: float
    pct_peak_bandwidth: float       #: achieved/peak bandwidth, in [0, 1]

    def as_dict(self) -> Dict[str, object]:
        return {
            "flops": self.flops,
            "dram_bytes": self.dram_bytes,
            "arithmetic_intensity": self.arithmetic_intensity,
            "ridge_intensity": self.ridge_intensity,
            "dtype": self.dtype,
            "achieved_gflops": self.achieved_gflops,
            "peak_gflops": self.peak_gflops,
            "pct_peak_flops": self.pct_peak_flops,
            "achieved_bandwidth_gbs": self.achieved_bandwidth_gbs,
            "peak_bandwidth_gbs": self.peak_bandwidth_gbs,
            "pct_peak_bandwidth": self.pct_peak_bandwidth,
        }


@dataclass
class Bottleneck:
    """The named verdict plus the numbers that support it."""

    verdict: str                    #: one of VERDICTS
    evidence: Dict[str, object] = field(default_factory=dict)
    narrative: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"verdict": self.verdict, "evidence": dict(self.evidence),
                "narrative": self.narrative}


VERDICTS = ("memory-bound", "occupancy-capped", "divergence", "latency",
            "compute-bound")


@dataclass
class KernelReport:
    """Everything the analysis concluded about one kernel × block shape."""

    benchmark: str
    kernel: str
    arch: str
    tier: str
    block: Tuple[int, ...]
    launches: int
    num_blocks: int
    modeled_seconds: float
    #: the uncoarsened (polygeist-noopt) modeled seconds over the same
    #: launches, and the resulting winner speedup; None when the baseline
    #: itself cannot be modeled
    baseline_seconds: Optional[float]
    speedup_vs_baseline: Optional[float]
    breakdown: Dict[str, float]
    occupancy: Dict[str, object]
    metrics: Dict[str, float]
    coalescing: Dict[str, float]
    roofline: Roofline
    bottleneck: Bottleneck
    decisions: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "kernel": self.kernel,
            "arch": self.arch,
            "tier": self.tier,
            "block": list(self.block),
            "launches": self.launches,
            "num_blocks": self.num_blocks,
            "modeled_seconds": self.modeled_seconds,
            "baseline_seconds": self.baseline_seconds,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "breakdown": dict(self.breakdown),
            "occupancy": dict(self.occupancy),
            "metrics": dict(self.metrics),
            "coalescing": dict(self.coalescing),
            "roofline": self.roofline.as_dict(),
            "bottleneck": self.bottleneck.as_dict(),
            "decisions": dict(self.decisions),
        }

    def to_markdown(self) -> str:
        lines = ["## %s · %s on %s (block %s)" % (
            self.benchmark, self.kernel, self.arch,
            "x".join(str(d) for d in self.block))]
        lines.append("")
        lines.append("**Verdict: %s** — %s" % (self.bottleneck.verdict,
                                               self.bottleneck.narrative))
        lines.append("")
        roof = self.roofline
        lines.append("- modeled time: %.3es over %d launch(es), "
                     "%d blocks total" % (self.modeled_seconds,
                                          self.launches, self.num_blocks))
        if self.speedup_vs_baseline is not None:
            lines.append("- %.2fx over the uncoarsened baseline (%.3es)"
                         % (self.speedup_vs_baseline,
                            self.baseline_seconds))
        lines.append("- roofline: %.2f flop/B arithmetic intensity "
                     "(ridge %.1f, %s) — %.1f%% of peak bandwidth "
                     "(%.0f / %.0f GB/s), %.1f%% of peak compute "
                     "(%.1f / %.0f GFLOP/s)" % (
                         roof.arithmetic_intensity, roof.ridge_intensity,
                         roof.dtype,
                         100.0 * roof.pct_peak_bandwidth,
                         roof.achieved_bandwidth_gbs,
                         roof.peak_bandwidth_gbs,
                         100.0 * roof.pct_peak_flops,
                         roof.achieved_gflops, roof.peak_gflops))
        occ = self.occupancy
        lines.append("- occupancy: %.0f%% (limiter: %s, %d regs/thread, "
                     "%d B shared/block, %d threads/block)" % (
                         100.0 * occ.get("occupancy", 0.0),
                         occ.get("limiter", "?"),
                         occ.get("registers_per_thread", 0),
                         occ.get("shared_bytes_per_block", 0),
                         occ.get("threads_per_block", 0)))
        total_work = sum(self.breakdown.get(k, 0.0)
                         for k in ("compute", "memory", "shared")) or 1.0
        lines.append("- pipeline split: " + ", ".join(
            "%s %.0f%%" % (name, 100.0 * self.breakdown.get(name, 0.0) /
                           total_work)
            for name in ("memory", "compute", "shared")) +
            " (latency floor %.3es)" % self.breakdown.get("latency", 0.0))
        if self.coalescing:
            lines.append("- coalescing: %.0f%% average efficiency over %d "
                         "access site(s), worst %.0f%%" % (
                             100.0 * self.coalescing.get("mean_efficiency",
                                                         1.0),
                             self.coalescing.get("access_sites", 0),
                             100.0 * self.coalescing.get("worst_efficiency",
                                                         1.0)))
        decisions = self.decisions
        if decisions.get("narrative"):
            lines.append("")
            lines.append("**Why the winner won:** %s"
                         % decisions["narrative"])
        return "\n".join(lines)


@dataclass
class BenchmarkAnalysis:
    """One analyzed run: per-kernel reports plus run-level context."""

    benchmark: str
    arch: str
    tier: str
    size: int
    composite_seconds: float
    pcie_seconds: float
    kernels: List[KernelReport]
    #: per-engine-stage wall seconds of the observed run
    stages: Dict[str, float] = field(default_factory=dict)
    #: hottest span names by self seconds: [(name, calls, self_seconds)]
    spans: List[Tuple[str, int, float]] = field(default_factory=list)
    provenance: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "benchmark": self.benchmark,
            "arch": self.arch,
            "tier": self.tier,
            "size": self.size,
            "composite_seconds": self.composite_seconds,
            "pcie_seconds": self.pcie_seconds,
            "kernels": [k.as_dict() for k in self.kernels],
            "stages": dict(self.stages),
            "spans": [{"name": name, "calls": calls,
                       "self_seconds": self_seconds}
                      for name, calls, self_seconds in self.spans],
            "provenance": dict(self.provenance),
        }

    def to_markdown(self) -> str:
        lines = ["# Analysis: %s on %s (tier %s, size %d)" %
                 (self.benchmark, self.arch, self.tier, self.size)]
        lines.append("")
        lines.append("Composite modeled time %.3es (PCIe %.3es, "
                     "%d kernel(s))." % (self.composite_seconds,
                                         self.pcie_seconds,
                                         len(self.kernels)))
        for report in self.kernels:
            lines.append("")
            lines.append(report.to_markdown())
        if self.stages:
            lines.append("")
            lines.append("## Pipeline stages (wall seconds)")
            lines.append("")
            for name, seconds in sorted(self.stages.items(),
                                        key=lambda kv: -kv[1]):
                lines.append("- %s: %.3fs" % (name, seconds))
        if self.spans:
            lines.append("")
            lines.append("## Hottest spans (self seconds)")
            lines.append("")
            for name, calls, self_seconds in self.spans:
                lines.append("- %s: %d call(s), %.6fs" %
                             (name, calls, self_seconds))
        return "\n".join(lines)


# -- classification -----------------------------------------------------------


def classify_bottleneck(breakdown: Dict[str, float],
                        occupancy: Dict[str, object],
                        roofline: Roofline,
                        divergent_branches: int) -> Bottleneck:
    """Name the limiting resource from the summed pipeline breakdown.

    Mirrors :func:`repro.simulator.model.evaluate_launch`'s structure: the
    dominant work term (compute/memory/shared) sets the pace unless the
    per-block dependence chain (latency floor) exceeds it, in which case
    the kernel is starved of parallelism — occupancy-capped when the
    occupancy calculator names a binding resource limiter, raw latency
    otherwise.
    """
    compute = breakdown.get("compute", 0.0)
    memory = breakdown.get("memory", 0.0)
    shared = breakdown.get("shared", 0.0)
    latency = breakdown.get("latency", 0.0)
    occ = float(occupancy.get("occupancy", 0.0))
    limiter = str(occupancy.get("limiter", "none"))
    evidence: Dict[str, object] = {
        "compute_seconds": compute,
        "memory_seconds": memory,
        "shared_seconds": shared,
        "latency_floor_seconds": latency,
        "occupancy": occ,
        "occupancy_limiter": limiter,
        "divergent_branches": divergent_branches,
        "pct_peak_bandwidth": roofline.pct_peak_bandwidth,
        "arithmetic_intensity": roofline.arithmetic_intensity,
    }
    work = {"compute": compute, "memory": memory, "shared": shared}
    dominant = max(work, key=work.get)
    if latency > work[dominant]:
        if occ < LOW_OCCUPANCY and limiter not in ("", "none"):
            return Bottleneck(
                "occupancy-capped", evidence,
                "the latency floor (%.3es) exceeds every pipeline's work "
                "and occupancy is %.0f%% (limited by %s): too few resident "
                "warps to hide memory latency" % (latency, 100.0 * occ,
                                                  limiter))
        return Bottleneck(
            "latency", evidence,
            "the per-block dependence chain (%.3es) dominates all pipeline "
            "work at %.0f%% occupancy: the kernel is latency-bound, not "
            "throughput-bound" % (latency, 100.0 * occ))
    if dominant in ("memory", "shared"):
        via = "DRAM traffic" if dominant == "memory" \
            else "shared-memory throughput"
        return Bottleneck(
            "memory-bound", evidence,
            "%s dominates (%.3es vs %.3es compute) at %.0f%% of peak DRAM "
            "bandwidth with arithmetic intensity %.2f flop/B (ridge %.1f)"
            % (via, work[dominant], compute,
               100.0 * roofline.pct_peak_bandwidth,
               roofline.arithmetic_intensity, roofline.ridge_intensity))
    # compute-dominant cases
    divergence_penalty = 0.35 * min(divergent_branches, 4)
    if divergent_branches and divergence_penalty / \
            (1.0 + divergence_penalty) >= 0.25:
        return Bottleneck(
            "divergence", evidence,
            "compute dominates (%.3es) and %d divergent branch(es) "
            "inflate it by %.0f%%: threads in a warp serialize on "
            "data-dependent control flow" % (compute, divergent_branches,
                                             100.0 * divergence_penalty))
    if occ < LOW_OCCUPANCY and limiter not in ("", "none"):
        return Bottleneck(
            "occupancy-capped", evidence,
            "compute dominates (%.3es) but occupancy is only %.0f%% "
            "(limited by %s), so arithmetic latency is poorly hidden"
            % (compute, 100.0 * occ, limiter))
    return Bottleneck(
        "compute-bound", evidence,
        "compute dominates (%.3es vs %.3es memory) at %.1f%% of peak "
        "%s throughput" % (compute, memory,
                           100.0 * roofline.pct_peak_flops,
                           roofline.dtype))


# -- decision narrative -------------------------------------------------------


def _decision_summary(decision, winner_occupancy: Dict[str, object],
                      baseline_occupancy: Optional[Dict[str, object]],
                      coarsen_total: int) -> Dict[str, object]:
    """Condense one TuneDecision into counts, margins, and a narrative."""
    from ..obs.decisions import STAGES

    alternatives = decision.alternatives
    eliminated: Dict[str, int] = {}
    for alt in alternatives:
        if alt.eliminated_by:
            eliminated[alt.eliminated_by] = \
                eliminated.get(alt.eliminated_by, 0) + 1
    winner = decision.winner
    timed_losers = [alt for alt in alternatives
                    if alt.time_seconds is not None and not alt.selected]
    runner_up = min(timed_losers, key=lambda alt: alt.time_seconds) \
        if timed_losers else None
    baseline = decision.find("block=1 thread=1")

    parts: List[str] = []
    stage_bits = ", ".join("%d by %s" % (eliminated[s], s)
                           for s in STAGES if s in eliminated)
    parts.append("TDO considered %d alternative(s)%s" % (
        len(alternatives),
        " (%s eliminated)" % stage_bits if stage_bits else ""))
    if winner is not None:
        won = "%s won" % winner.desc
        if winner.time_seconds is not None:
            won += " at %.3es modeled" % winner.time_seconds
        extras = []
        if baseline is not None and baseline.time_seconds and \
                winner.time_seconds and baseline is not winner:
            extras.append("%.2fx over the uncoarsened baseline (%.3es)"
                          % (baseline.time_seconds / winner.time_seconds,
                             baseline.time_seconds))
        if runner_up is not None and winner.time_seconds:
            margin = runner_up.time_seconds / winner.time_seconds - 1.0
            extras.append("%.0f%% ahead of the runner-up (%s)"
                          % (100.0 * margin, runner_up.desc))
        if extras:
            won += " — " + " and ".join(extras)
        parts.append(won)
        if coarsen_total > 1:
            trade = "the winning config coarsens %dx, trading occupancy " \
                % coarsen_total
            if baseline_occupancy is not None:
                trade += "(%.0f%% → %.0f%%, limiter %s) " % (
                    100.0 * baseline_occupancy.get("occupancy", 0.0),
                    100.0 * winner_occupancy.get("occupancy", 0.0),
                    winner_occupancy.get("limiter", "?"))
            else:
                trade += "(now %.0f%%, limiter %s) " % (
                    100.0 * winner_occupancy.get("occupancy", 0.0),
                    winner_occupancy.get("limiter", "?"))
            trade += "for %dx the outstanding loads per thread " \
                     "(memory-level parallelism)" % coarsen_total
            parts.append(trade)
        elif winner is not None and coarsen_total == 1:
            parts.append("the uncoarsened configuration was already "
                         "fastest: extra per-thread work would not repay "
                         "its occupancy cost here")
    return {
        "wrapper": decision.wrapper,
        "alternatives": len(alternatives),
        "eliminated": eliminated,
        "winner": winner.desc if winner is not None else None,
        "winner_seconds": winner.time_seconds if winner is not None
        else None,
        "runner_up": runner_up.desc if runner_up is not None else None,
        "runner_up_seconds": runner_up.time_seconds
        if runner_up is not None else None,
        "baseline_desc_seconds": baseline.time_seconds
        if baseline is not None else None,
        "notes": list(decision.notes),
        "narrative": "; ".join(parts) + ".",
    }


# -- the analysis driver ------------------------------------------------------


def _occupancy_dict(model) -> Dict[str, object]:
    occ = model.occupancy
    return {
        "occupancy": occ.occupancy,
        "blocks_per_sm": occ.blocks_per_sm,
        "active_threads": occ.active_threads,
        "limiter": occ.limiter,
        "registers_per_thread": model.registers.registers_per_thread,
        "shared_bytes_per_block": model.shared_per_block,
        "threads_per_block": model.threads_per_block,
    }


def _coalescing_dict(models) -> Dict[str, float]:
    accesses = [access for model in models for access in model.accesses]
    if not accesses:
        return {}
    weights = [max(access.executions, 1e-12) for access in accesses]
    mean = sum(access.efficiency * weight
               for access, weight in zip(accesses, weights)) / sum(weights)
    return {
        "access_sites": len(accesses),
        "mean_efficiency": mean,
        "worst_efficiency": min(access.efficiency for access in accesses),
    }


def _group_models(program, wrapper_name: str, arch):
    """The per-loop KernelModels of a tuned wrapper, cache-shared with
    the program's own modeling path."""
    from ..dialects import polygeist
    from ..simulator.model import KernelModel
    from ..transforms.coarsen import block_parallels

    f = program.module.func(wrapper_name)
    wrappers = polygeist.find_gpu_wrappers(f)
    if not wrappers:
        return f, []
    cache = getattr(program, "_model_cache", {})
    models = []
    for loop in block_parallels(wrappers[0]):
        model = cache.get(loop.stable_uid())
        if model is None:
            model = KernelModel(loop, arch)
        models.append((loop, model))
    return f, models


def _roofline(arch, flops32: float, flops64: float, dram_bytes: float,
              seconds: float) -> Roofline:
    dtype = "f64" if flops64 > flops32 else "f32"
    flops = flops32 + flops64
    peak_flops = arch.peak_flops(dtype)
    peak_bw = arch.peak_bandwidth_bytes()
    achieved_flops = flops / seconds if seconds > 0 else 0.0
    achieved_bw = dram_bytes / seconds if seconds > 0 else 0.0
    return Roofline(
        flops=flops,
        dram_bytes=dram_bytes,
        arithmetic_intensity=flops / dram_bytes if dram_bytes else 0.0,
        ridge_intensity=arch.ridge_intensity(dtype),
        dtype=dtype,
        achieved_gflops=achieved_flops / 1e9,
        peak_gflops=peak_flops / 1e9,
        pct_peak_flops=achieved_flops / peak_flops if peak_flops else 0.0,
        achieved_bandwidth_gbs=achieved_bw / 1e9,
        peak_bandwidth_gbs=peak_bw / 1e9,
        pct_peak_bandwidth=achieved_bw / peak_bw if peak_bw else 0.0,
    )


def analyze_benchmark(name: str, arch, tier: str = "polygeist",
                      size: Optional[int] = None,
                      configs: Optional[Sequence[Dict]] = None
                      ) -> BenchmarkAnalysis:
    """Tune + model one benchmark with full observability and report.

    ``arch`` may be a :class:`~repro.targets.GPUArchitecture` or a name.
    The run mirrors ``simulate_composite`` (tune over all launches of each
    kernel group, then model each launch), but keeps every intermediate
    the report needs: the tuned IR's :class:`KernelModel`s, the merged
    Table-II metrics, the decision log, and the span trace.
    """
    import platform

    from .. import __version__
    from ..benchsuite.base import get_benchmark
    from ..engine import TuningCache, TuningEngine
    from ..obs import decisions as obs_decisions
    from ..obs import tracer as obs_tracer
    from ..obs.export import _aggregate
    from ..pipeline import Program
    from ..runtime.gpu_runtime import PCIE_BANDWIDTH, PCIE_LATENCY
    from ..simulator.model import block_count
    from ..targets import arch_by_name

    if isinstance(arch, str):
        arch = arch_by_name(arch)
    bench = get_benchmark(name)
    size = size or bench.model_size
    # memory-only engine: an on-disk cache hit would replay the winner
    # without running TDO, leaving the decision log (the report's core
    # evidence) empty
    engine = TuningEngine(cache=TuningCache(None))
    log = obs_decisions.DecisionLog()
    tracer = obs_tracer.Tracer()
    launches = list(bench.iter_launches(size))
    grouped: Dict[Tuple[str, Tuple[int, ...]], List] = {}
    for kernel, grid, block in launches:
        grouped.setdefault((kernel, tuple(block)), []).append(tuple(grid))

    with obs_tracer.tracing(tracer), obs_decisions.logging_decisions(log):
        program = Program(bench.source, arch=arch, tier=tier,
                          autotune_configs=configs, engine=engine)
        if tier == "polygeist":
            for (kernel, block), grids in grouped.items():
                program.tune_aggregate(kernel, block, grids)
        per_group: Dict[Tuple[str, Tuple[int, ...]], List] = {}
        composite = 0.0
        for kernel, grid, block in launches:
            timing = program.model_launch(kernel, grid, block)
            composite += timing.time_seconds
            per_group.setdefault((kernel, tuple(block)),
                                 []).append(timing)

    # the uncoarsened reference: same launches through the noopt tier
    baseline_program = None
    if tier == "polygeist":
        baseline_program = Program(bench.source, arch=arch,
                                   tier="polygeist-noopt", engine=engine)

    reports: List[KernelReport] = []
    for (kernel, block), grids in grouped.items():
        timings = per_group[(kernel, block)]
        seconds = sum(t.time_seconds for t in timings)
        breakdown: Dict[str, float] = {}
        metrics = None
        for timing in timings:
            for key, value in timing.breakdown.items():
                breakdown[key] = breakdown.get(key, 0.0) + value
            if metrics is None:
                metrics = timing.metrics
            else:
                _sum_metrics(metrics, timing.metrics)

        wrapper_name = program.generator.get_launch_wrapper(
            kernel, len(grids[0]), block)
        f, loop_models = _group_models(program, wrapper_name, arch)
        grid_args = f.body_block().args[:len(grids[0])]

        flops32 = flops64 = 0.0
        divergent = 0
        coarsen_total = 1
        primary_model = None
        for loop, model in loop_models:
            if primary_model is None:
                primary_model = model
            divergent = max(divergent, model.divergent_branches)
            coarsen_total = max(coarsen_total, model.coarsen_total)
            for grid in grids:
                blocks = block_count(loop, dict(zip(grid_args, grid)))
                if blocks:
                    work = model.threads_per_block * blocks
                    flops32 += model.stats.flops_f32 * work
                    flops64 += model.stats.flops_f64 * work

        roofline = _roofline(arch, flops32, flops64,
                             metrics.dram_bytes if metrics else 0.0,
                             seconds)
        occupancy = _occupancy_dict(primary_model) \
            if primary_model is not None else {}
        bottleneck = classify_bottleneck(breakdown, occupancy, roofline,
                                         divergent)

        baseline_seconds = None
        speedup = None
        if baseline_program is not None:
            try:
                baseline_seconds = sum(
                    baseline_program.model_launch(kernel, grid,
                                                  block).time_seconds
                    for grid in grids)
                if seconds > 0:
                    speedup = baseline_seconds / seconds
            except Exception:
                baseline_seconds = None

        decision = next((d for d in log.decisions
                         if d.wrapper == wrapper_name), None)
        baseline_occ = None
        if baseline_program is not None and decision is not None:
            bf, bmodels = _group_models(baseline_program, wrapper_name,
                                        arch)
            if bmodels:
                baseline_occ = _occupancy_dict(bmodels[0][1])
        decisions = _decision_summary(decision, occupancy, baseline_occ,
                                      coarsen_total) \
            if decision is not None else {}

        reports.append(KernelReport(
            benchmark=name, kernel=kernel, arch=arch.name, tier=tier,
            block=block, launches=len(grids),
            num_blocks=metrics.num_blocks if metrics else 0,
            modeled_seconds=seconds,
            baseline_seconds=baseline_seconds,
            speedup_vs_baseline=speedup,
            breakdown=breakdown,
            occupancy=occupancy,
            metrics=metrics.as_dict() if metrics else {},
            coalescing=_coalescing_dict([m for _, m in loop_models]),
            roofline=roofline,
            bottleneck=bottleneck,
            decisions=decisions,
        ))

    pcie = 2 * PCIE_LATENCY + bench.transfer_bytes(size) / PCIE_BANDWIDTH
    aggregated = _aggregate((span.name, span.duration, span.self_seconds)
                            for span in tracer.finished())
    aggregated.sort(key=lambda row: row[3], reverse=True)
    return BenchmarkAnalysis(
        benchmark=name, arch=arch.name, tier=tier, size=size,
        composite_seconds=composite + pcie, pcie_seconds=pcie,
        kernels=reports,
        stages=dict(engine.stats.stage_seconds),
        spans=[(row[0], row[1], row[3]) for row in aggregated[:5]],
        provenance={
            "schema": REPORT_SCHEMA,
            "repro_version": __version__,
            "arch": arch.name,
            "python": platform.python_version(),
            "created": None,
        },
    )


def _sum_metrics(into, other) -> None:
    """Accumulate per-launch KernelMetrics across a kernel's launches."""
    into.time_seconds += other.time_seconds
    into.l2_to_l1_read_bytes += other.l2_to_l1_read_bytes
    into.l1_to_l2_write_bytes += other.l1_to_l2_write_bytes
    into.dram_read_bytes += other.dram_read_bytes
    into.dram_write_bytes += other.dram_write_bytes
    into.l1_to_sm_read_requests += other.l1_to_sm_read_requests
    into.sm_to_l1_write_requests += other.sm_to_l1_write_requests
    into.shmem_to_sm_read_requests += other.shmem_to_sm_read_requests
    into.sm_to_shmem_write_requests += other.sm_to_shmem_write_requests
    into.lsu_utilization = max(into.lsu_utilization,
                               other.lsu_utilization)
    into.fma_utilization = max(into.fma_utilization,
                               other.fma_utilization)
    into.occupancy = max(into.occupancy, other.occupancy)
    into.registers_per_thread = max(into.registers_per_thread,
                                    other.registers_per_thread)
    into.shared_bytes_per_block = max(into.shared_bytes_per_block,
                                      other.shared_bytes_per_block)
    into.threads_per_block = max(into.threads_per_block,
                                 other.threads_per_block)
    into.num_blocks += other.num_blocks
