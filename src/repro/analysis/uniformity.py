"""Uniformity analysis: does a value depend on given parallel ivs?

Block coarsening (§V-B of the paper) is legal only when thread barriers are
not nested in control flow that transitively depends on the block identifier.
This module provides the transitive dependence check. Memory loads are
treated conservatively: a loaded value *may* depend on anything, so it is
non-uniform unless the analysis is told otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..ir import BlockArgument, Operation, OpResult, Value


def contains_barrier(op: Operation) -> bool:
    """True if a ``polygeist.barrier`` is nested anywhere inside ``op``."""
    stack = [op]
    while stack:
        candidate = stack.pop()
        if candidate.name == "polygeist.barrier":
            return True
        for region in candidate.regions:
            for block in region.blocks:
                stack.extend(block.ops)
    return False


def depends_on_values(value: Value, sources: Set[Value],
                      loads_are_dependent: bool = True,
                      _cache: Optional[Dict[Value, bool]] = None) -> bool:
    """True if ``value`` (transitively) depends on any value in ``sources``.

    Dependence flows through operand edges of defining operations. Region
    block arguments other than the sources themselves are treated as
    dependent on the operands of their defining op (e.g. an ``scf.for`` iv
    depends on the loop bounds; iteration args depend on their inits and on
    everything yielded inside the loop — approximated by "the whole loop").
    """
    if _cache is None:
        _cache = {}
    if value in _cache:
        return _cache[value]
    if value in sources:
        _cache[value] = True
        return True
    _cache[value] = False  # guard against cycles (while loops)
    result = False
    if isinstance(value, OpResult):
        op = value.owner
        if op.name == "memref.load" or op.name == "memref.atomic_rmw":
            if loads_are_dependent:
                result = True
            else:
                result = any(depends_on_values(v, sources,
                                               loads_are_dependent, _cache)
                             for v in op._operands)
        elif op.regions:
            # results of region ops (scf.if/for/while): depend on anything
            # used inside, conservatively: operands plus all nested operands
            result = _region_op_depends(op, sources, loads_are_dependent,
                                        _cache)
        else:
            result = any(depends_on_values(v, sources, loads_are_dependent,
                                           _cache) for v in op._operands)
    elif isinstance(value, BlockArgument):
        owner_op = value.owner.parent_op if value.owner.parent else None
        if owner_op is None or owner_op.name in ("func.func", "gpu.func"):
            result = False  # function argument: uniform
        elif owner_op.name == "scf.parallel" or \
                (owner_op.name == "scf.for" and value.index == 0):
            # induction variables depend only on the loop bounds
            result = any(depends_on_values(v, sources, loads_are_dependent,
                                           _cache)
                         for v in owner_op._operands)
        else:
            # iteration args / while args: approximated by the whole loop
            result = _region_op_depends(owner_op, sources,
                                        loads_are_dependent, _cache)
    _cache[value] = result
    return result


def _region_op_depends(op: Operation, sources: Set[Value],
                       loads_are_dependent: bool,
                       cache: Dict[Value, bool]) -> bool:
    if any(depends_on_values(v, sources, loads_are_dependent, cache)
           for v in op._operands):
        return True
    if loads_are_dependent:
        # any load nested inside makes the region's values unknown
        loads = []
        op.walk_preorder(lambda child: loads.append(child)
                         if child.name in ("memref.load",
                                           "memref.atomic_rmw") else None,
                         include_self=False)
        if loads:
            return True
    # values from outside used inside
    outside_uses = _external_operands(op)
    return any(depends_on_values(v, sources, loads_are_dependent, cache)
               for v in outside_uses)


def _external_operands(op: Operation) -> Set[Value]:
    """Values defined outside ``op`` but used somewhere inside it."""
    internal: Set[Value] = set()
    external: Set[Value] = set()

    def collect(child: Operation) -> None:
        for result in child.results:
            internal.add(result)
        for region in child.regions:
            for block in region.blocks:
                internal.update(block.args)

    op.walk_preorder(collect)

    def scan(child: Operation) -> None:
        for operand in child._operands:
            if operand not in internal:
                external.add(operand)

    op.walk_preorder(scan, include_self=False)
    for operand in op._operands:
        external.add(operand)
    return external


def is_uniform_in(value: Value, ivs: Iterable[Value],
                  loads_are_dependent: bool = True) -> bool:
    """True if ``value`` is provably identical across iterations over ``ivs``."""
    return not depends_on_values(value, set(ivs), loads_are_dependent)
