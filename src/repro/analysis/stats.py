"""Closed-form kernel statistics (§VI "Kernel Statistics").

Counts operations executed by one thread of a kernel, multiplying nested
loop bodies by their trip counts — exactly when bounds are compile-time
constants, and with a configurable symbolic estimate otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dialects import arith
from ..ir import FloatType, MemRefType, Operation

#: assumed trip count for loops whose bounds are not compile-time constants
DEFAULT_SYMBOLIC_TRIPS = 16.0


@dataclass
class KernelStats:
    """Per-thread operation counts."""

    flops_f32: float = 0.0
    flops_f64: float = 0.0
    int_ops: float = 0.0
    special_ops: float = 0.0       # transcendental math
    loads_global: float = 0.0
    stores_global: float = 0.0
    loads_shared: float = 0.0
    stores_shared: float = 0.0
    loads_local: float = 0.0
    stores_local: float = 0.0
    atomics: float = 0.0
    barriers: float = 0.0
    branches: float = 0.0
    #: True when some trip count was estimated rather than exact
    symbolic: bool = False

    @property
    def flops(self) -> float:
        return self.flops_f32 + self.flops_f64

    @property
    def global_accesses(self) -> float:
        return self.loads_global + self.stores_global

    @property
    def shared_accesses(self) -> float:
        return self.loads_shared + self.stores_shared

    def scaled(self, factor: float) -> "KernelStats":
        scaled = KernelStats()
        for name in _NUMERIC_FIELDS:
            setattr(scaled, name, getattr(self, name) * factor)
        scaled.symbolic = self.symbolic
        return scaled

    def merge(self, other: "KernelStats") -> None:
        for name in _NUMERIC_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.symbolic = self.symbolic or other.symbolic


_NUMERIC_FIELDS = [
    "flops_f32", "flops_f64", "int_ops", "special_ops", "loads_global",
    "stores_global", "loads_shared", "stores_shared", "loads_local",
    "stores_local", "atomics", "barriers", "branches",
]

_FLOAT_ARITH = {"arith.addf", "arith.subf", "arith.mulf", "arith.divf",
                "arith.remf", "arith.minf", "arith.maxf", "arith.negf",
                "arith.cmpf", "arith.select"}


def _trip_count(op: Operation) -> Optional[float]:
    """Static trip count of an scf.for, or None."""
    lb = arith.constant_value(op.operand(0))
    ub = arith.constant_value(op.operand(1))
    step = arith.constant_value(op.operand(2))
    if lb is None or ub is None or step is None or step <= 0:
        return None
    return max(0.0, float((ub - lb + step - 1) // step))


def _classify_access(stats: KernelStats, op: Operation, factor: float,
                     is_load: bool) -> None:
    from ..dialects import memref as memref_d
    ref = memref_d.load_op_ref(op)
    space = ref.type.memory_space if isinstance(ref.type, MemRefType) \
        else "global"
    attr = {"global": ("loads_global", "stores_global"),
            "shared": ("loads_shared", "stores_shared"),
            "local": ("loads_local", "stores_local"),
            "constant": ("loads_global", "stores_global")}[space]
    name = attr[0] if is_load else attr[1]
    setattr(stats, name, getattr(stats, name) + factor)


def _count_block(stats: KernelStats, block, factor: float,
                 symbolic_trips: float) -> None:
    for op in block.ops:
        name = op.name
        if name == "scf.for":
            trips = _trip_count(op)
            if trips is None:
                trips = symbolic_trips
                stats.symbolic = True
            stats.int_ops += factor * trips  # induction increment
            _count_block(stats, op.body_block(), factor * trips,
                         symbolic_trips)
        elif name == "scf.while":
            stats.symbolic = True
            stats.branches += factor * symbolic_trips
            _count_block(stats, op.body_block(0), factor * symbolic_trips,
                         symbolic_trips)
            _count_block(stats, op.body_block(1), factor * symbolic_trips,
                         symbolic_trips)
        elif name == "scf.if":
            stats.branches += factor
            # both sides counted at half weight (unknown probability)
            _count_block(stats, op.body_block(0), factor * 0.5,
                         symbolic_trips)
            _count_block(stats, op.body_block(1), factor * 0.5,
                         symbolic_trips)
        elif name == "scf.parallel":
            # nested (non-GPU) parallel treated as a loop
            trips = 1.0
            n = op.attr("num_dims")
            for d in range(n):
                ub = arith.constant_value(op.operands[n + d])
                lb = arith.constant_value(op.operands[d])
                if ub is None or lb is None:
                    stats.symbolic = True
                    trips *= symbolic_trips
                else:
                    trips *= max(0, ub - lb)
            _count_block(stats, op.body_block(), factor * trips,
                         symbolic_trips)
        elif name == "memref.load":
            _classify_access(stats, op, factor, is_load=True)
        elif name == "memref.store":
            _classify_access(stats, op, factor, is_load=False)
        elif name == "memref.atomic_rmw":
            stats.atomics += factor
        elif name == "polygeist.barrier":
            stats.barriers += factor
        elif name in _FLOAT_ARITH:
            result_type = op.results[0].type if op.results else None
            operand_type = op.operand(0).type if op.num_operands else None
            width_source = result_type or operand_type
            if isinstance(width_source, FloatType) and \
                    width_source.width == 64:
                stats.flops_f64 += factor
            elif isinstance(width_source, FloatType):
                stats.flops_f32 += factor
            else:
                stats.int_ops += factor
        elif name.startswith("math."):
            stats.special_ops += factor
        elif name.startswith("arith.") and name != "arith.constant":
            stats.int_ops += factor
        elif name == "polygeist.alternatives":
            _count_block(stats, op.body_block(0), factor, symbolic_trips)
        elif op.regions:
            for region in op.regions:
                for nested in region.blocks:
                    _count_block(stats, nested, factor, symbolic_trips)


def kernel_statistics(thread_parallel: Operation,
                      symbolic_trips: float = DEFAULT_SYMBOLIC_TRIPS
                      ) -> KernelStats:
    """Per-thread statistics for the body of a GPU thread loop."""
    stats = KernelStats()
    _count_block(stats, thread_parallel.body_block(), 1.0, symbolic_trips)
    return stats
