"""Performance regression gating: diff two recorded runs cell by cell.

``repro check baseline.json new.json --noise-band 5%`` loads two records
produced by ``repro bench`` (``BENCH_*.json``) or ``repro sweep --json``,
extracts the comparable time cells — per-measurement CPU seconds for
bench records, per-(benchmark, arch, tier) modeled seconds for fig16
sweeps, per-(kernel, config) seconds for fig13 — and fails when any cell
in ``new`` exceeds its baseline by more than the noise band. Cells
present in the baseline but missing from ``new`` also fail: silently
dropping a cell must not read as "no regression".

Comparisons are refused (exit code 2, never a diff) when the two records
are not comparable at all:

* different kinds (a bench record vs a sweep, fig16 vs fig13);
* different provenance schema versions;
* different architecture sets;
* records predating provenance headers (regenerate them first).

All extracted cells are seconds, so lower is better and the gate is
one-sided: improvements beyond the band are reported but never fail.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: provenance schema this checker understands
PROVENANCE_SCHEMA = 2


def provenance_header(archs: Optional[List[str]] = None,
                      created: Optional[str] = None) -> Dict[str, object]:
    """The provenance block every record producer stamps on its output.

    ``created`` is populated by the caller (the CLI passes a wall-clock
    timestamp; tests pass ``None`` for byte-stable fixtures) so this
    module stays deterministic.
    """
    import platform

    from .. import __version__
    return {
        "schema": PROVENANCE_SCHEMA,
        "repro_version": __version__,
        "python": platform.python_version(),
        "arch": sorted(str(a) for a in archs) if archs else None,
        "created": created,
    }


class CheckUsageError(ValueError):
    """The two records cannot be compared at all (exit code 2)."""


def parse_noise_band(text: str) -> float:
    """Parse a noise band: ``"5%"`` → 0.05, ``"0.05"`` → 0.05."""
    text = str(text).strip()
    try:
        if text.endswith("%"):
            value = float(text[:-1].strip()) / 100.0
        else:
            value = float(text)
    except ValueError:
        raise CheckUsageError(
            "cannot parse noise band %r (expected e.g. '5%%' or 0.05)"
            % text) from None
    if value < 0:
        raise CheckUsageError("noise band must be non-negative")
    return value


def load_record(path: str) -> Dict[str, object]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise CheckUsageError("cannot load %s: %s" % (path, error)) \
            from None
    if not isinstance(payload, dict):
        raise CheckUsageError("%s is not a JSON object" % path)
    return payload


def record_kind(payload: Dict[str, object]) -> Tuple[str, str]:
    """Classify a record: ``("bench", figure)`` or ``("sweep", figure)``."""
    if "measurements" in payload and "name" in payload:
        return ("bench", str(payload["name"]))
    if "figure" in payload:
        return ("sweep", str(payload["figure"]))
    raise CheckUsageError(
        "unrecognized record (neither a bench record with 'measurements' "
        "nor a sweep JSON with 'figure')")


def _provenance_archs(provenance: Dict[str, object]) -> List[str]:
    arch = provenance.get("arch")
    if arch is None:
        return []
    if isinstance(arch, str):
        return [arch]
    return sorted(str(a) for a in arch)


def check_provenance(baseline: Dict[str, object],
                     new: Dict[str, object]) -> List[str]:
    """Refuse cross-schema / cross-arch comparisons; return warnings."""
    warnings: List[str] = []
    missing = [label for label, payload in
               (("baseline", baseline), ("new", new))
               if not isinstance(payload.get("provenance"), dict)]
    if missing:
        raise CheckUsageError(
            "%s record(s) have no provenance header — regenerate with a "
            "current `repro bench`/`repro sweep --json` before comparing"
            % " and ".join(missing))
    prov_a = baseline["provenance"]
    prov_b = new["provenance"]
    if prov_a.get("schema") != prov_b.get("schema"):
        raise CheckUsageError(
            "cross-schema comparison refused: baseline schema %r vs new "
            "schema %r" % (prov_a.get("schema"), prov_b.get("schema")))
    archs_a = _provenance_archs(prov_a)
    archs_b = _provenance_archs(prov_b)
    if archs_a != archs_b:
        raise CheckUsageError(
            "cross-arch comparison refused: baseline covers %s, new "
            "covers %s" % (archs_a or "<unknown>", archs_b or "<unknown>"))
    if prov_a.get("repro_version") != prov_b.get("repro_version"):
        warnings.append("repro version differs: baseline %s vs new %s" %
                        (prov_a.get("repro_version"),
                         prov_b.get("repro_version")))
    if prov_a.get("python") != prov_b.get("python"):
        warnings.append("python version differs: baseline %s vs new %s" %
                        (prov_a.get("python"), prov_b.get("python")))
    return warnings


# -- cell extraction ----------------------------------------------------------


def extract_cells(payload: Dict[str, object]) -> Dict[str, float]:
    """The comparable seconds cells of one record, keyed stably."""
    kind, figure = record_kind(payload)
    if kind == "bench":
        cells: Dict[str, float] = {}
        for measurement in payload.get("measurements", []):
            label = measurement.get("label", "?")
            seconds = measurement.get("cpu_seconds")
            if isinstance(seconds, (int, float)):
                cells["measure|%s|cpu_seconds" % label] = float(seconds)
        return cells
    data = payload.get("data")
    if data is None:
        raise CheckUsageError(
            "sweep record has no merged data (incomplete run?); "
            "re-run the sweep to completion before comparing")
    if figure == "fig16":
        return {"%s|%s|%s" % (bench, arch, tier): float(seconds)
                for bench, by_arch in sorted(data.items())
                for arch, by_tier in sorted(by_arch.items())
                for tier, seconds in sorted(by_tier.items())}
    if figure == "fig13":
        cells = {}
        for sweep in data:
            prefix = "%s|%s|%s" % (sweep.get("benchmark"),
                                   sweep.get("kernel"),
                                   "x".join(str(d) for d in
                                            sweep.get("block", [])))
            for result in sweep.get("results", []):
                if result.get("valid") and \
                        isinstance(result.get("seconds"), (int, float)):
                    cells["%s|%s" % (prefix, result.get("desc"))] = \
                        float(result["seconds"])
        return cells
    if figure == "fig17":
        return {"%s|%s" % (bench, label): float(seconds)
                for bench, by_label in sorted(data.items())
                for label, seconds in sorted(by_label.items())
                if isinstance(seconds, (int, float))}
    # table2 rows mix seconds with utilizations and byte counts whose
    # direction is not "lower is better"; gate only the runtime cell
    if figure == "table2":
        cells = {}
        for label, row in sorted(data.items()):
            if isinstance(row, dict):
                seconds = row.get("time_seconds")
                if isinstance(seconds, (int, float)):
                    cells["%s|time_seconds" % label] = float(seconds)
        return cells
    raise CheckUsageError("unknown sweep figure %r" % figure)


# -- comparison ---------------------------------------------------------------


@dataclass
class CellDelta:
    """One compared cell."""

    key: str
    baseline: Optional[float]
    new: Optional[float]
    #: new/baseline; None when either side is missing or baseline is 0
    ratio: Optional[float]
    #: "ok" | "regression" | "improvement" | "missing" | "added"
    status: str


@dataclass
class CheckReport:
    """The outcome of one baseline-vs-new comparison."""

    kind: str
    figure: str
    noise_band: float
    cells: List[CellDelta] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CellDelta]:
        return [c for c in self.cells if c.status == "regression"]

    @property
    def missing(self) -> List[CellDelta]:
        return [c for c in self.cells if c.status == "missing"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def summary(self) -> str:
        compared = [c for c in self.cells
                    if c.status not in ("missing", "added")]
        lines = ["check %s/%s: %d cell(s) compared, noise band ±%.1f%%" %
                 (self.kind, self.figure, len(compared),
                  100.0 * self.noise_band)]
        for warning in self.warnings:
            lines.append("  warning: %s" % warning)
        for cell in self.cells:
            if cell.status == "regression":
                lines.append(
                    "  REGRESSION %s: %.4es -> %.4es (%.1f%% slower)" %
                    (cell.key, cell.baseline, cell.new,
                     100.0 * (cell.ratio - 1.0)))
            elif cell.status == "missing":
                lines.append("  MISSING %s: present in baseline, absent "
                             "in new" % cell.key)
            elif cell.status == "improvement":
                lines.append(
                    "  improvement %s: %.4es -> %.4es (%.1f%% faster)" %
                    (cell.key, cell.baseline, cell.new,
                     100.0 * (1.0 - cell.ratio)))
            elif cell.status == "added":
                lines.append("  added %s (no baseline)" % cell.key)
        verdict = "PASS" if self.ok else \
            "FAIL (%d regression(s), %d missing)" % (len(self.regressions),
                                                     len(self.missing))
        lines.append("  %s" % verdict)
        return "\n".join(lines)


def compare_records(baseline: Dict[str, object], new: Dict[str, object],
                    noise_band: float = 0.05) -> CheckReport:
    """Diff two records; raises :class:`CheckUsageError` when they are
    not comparable (kind, schema, or architecture mismatch)."""
    kind_a = record_kind(baseline)
    kind_b = record_kind(new)
    if kind_a != kind_b:
        raise CheckUsageError(
            "records are not comparable: baseline is %s/%s, new is %s/%s"
            % (kind_a + kind_b))
    warnings = check_provenance(baseline, new)
    cells_a = extract_cells(baseline)
    cells_b = extract_cells(new)
    report = CheckReport(kind=kind_a[0], figure=kind_a[1],
                         noise_band=noise_band, warnings=warnings)
    for key in sorted(set(cells_a) | set(cells_b)):
        old = cells_a.get(key)
        current = cells_b.get(key)
        if old is None:
            report.cells.append(CellDelta(key, None, current, None,
                                          "added"))
            continue
        if current is None:
            report.cells.append(CellDelta(key, old, None, None,
                                          "missing"))
            continue
        ratio = current / old if old > 0 else None
        if ratio is not None and ratio > 1.0 + noise_band:
            status = "regression"
        elif ratio is not None and ratio < 1.0 - noise_band:
            status = "improvement"
        else:
            status = "ok"
        report.cells.append(CellDelta(key, old, current, ratio, status))
    return report


def check_files(baseline_path: str, new_path: str,
                noise_band: float = 0.05) -> CheckReport:
    """:func:`compare_records` over two files on disk."""
    return compare_records(load_record(baseline_path),
                           load_record(new_path), noise_band)
