"""Static barrier-legality lint over ``polygeist.gpu_wrapper`` IR.

Three rules, all built on :mod:`repro.analysis.uniformity`:

* ``barrier-divergent`` — a barrier sits under control flow whose shape
  depends on the *thread* induction variables. All threads of a block must
  reach every ``__syncthreads`` together; a thread-divergent barrier is
  undefined behaviour on real GPUs (and the interpreter traps it with a
  :class:`~repro.interpreter.ConvergenceError`). Severity ``error`` when
  the dependence is arithmetic (definite), ``warning`` when it flows only
  through memory loads (possible).
* ``barrier-block-dependent`` — a barrier sits under control flow whose
  shape depends on the *block* induction variables: the §V-C condition
  that makes block coarsening illegal (the barrier would need duplication,
  Fig. 10 right). Severity ``note`` — the program is correct, but the
  tuner's block-coarsening configs will all be rejected. This rule is an
  independent re-derivation of what
  :func:`repro.transforms.unroll_interleave.check_unroll_legality`
  decides; tests cross-check the two on the whole benchsuite.
* ``shared-write-race`` — between two barriers, every thread of the block
  provably stores to the *same* shared-memory location while the stored
  value differs per thread: a write-write race. Severity ``warning``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..analysis.uniformity import is_uniform_in
from ..dialects import polygeist, scf
from ..ir import MemRefType, Module, Operation, Value

#: severities, strongest first
ERROR = "error"
WARNING = "warning"
NOTE = "note"

BARRIER_DIVERGENT = "barrier-divergent"
BARRIER_BLOCK_DEPENDENT = "barrier-block-dependent"
SHARED_WRITE_RACE = "shared-write-race"


@dataclass
class LintFinding:
    rule: str
    severity: str
    message: str
    op: Optional[Operation] = None

    def __str__(self) -> str:
        return "%s [%s]: %s" % (self.severity, self.rule, self.message)


@dataclass
class LintReport:
    wrapper: str = ""
    findings: List[LintFinding] = field(default_factory=list)

    def by_rule(self, rule: str) -> List[LintFinding]:
        return [f for f in self.findings if f.rule == rule]

    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    def summary(self) -> str:
        if not self.findings:
            return "%s: clean" % (self.wrapper or "<wrapper>")
        lines = ["%s:" % (self.wrapper or "<wrapper>")]
        lines.extend("  %s" % f for f in self.findings)
        return "\n".join(lines)


def _barriers_under(op: Operation) -> List[Operation]:
    found: List[Operation] = []
    op.walk_preorder(lambda o: found.append(o)
                     if o.name == polygeist.BARRIER else None,
                     include_self=False)
    return found


def _shape_values(op: Operation) -> List[Value]:
    """The values controlling whether/how often ``op``'s body executes."""
    if op.name == scf.FOR:
        return list(op.operands[:3])
    if op.name == scf.IF:
        return [op.operand(0)]
    if op.name in (scf.PARALLEL, scf.WHILE):
        return list(op.operands)
    return []


def _divergence_kind(values: Sequence[Value], ivs: Set[Value]
                     ) -> Optional[str]:
    """``ERROR`` for definite (arithmetic) iv-dependence, ``WARNING`` for
    possible dependence through loads, None when provably uniform."""
    worst = None
    for value in values:
        if not is_uniform_in(value, ivs, loads_are_dependent=False):
            return ERROR
        if not is_uniform_in(value, ivs, loads_are_dependent=True):
            worst = WARNING
    return worst


def _gating_path(barrier: Operation, stop: Operation) -> List[Operation]:
    """Control-flow ancestors of ``barrier`` strictly below ``stop``."""
    path: List[Operation] = []
    ancestor = barrier.parent_op
    while ancestor is not None and ancestor is not stop:
        path.append(ancestor)
        ancestor = ancestor.parent_op
    return path


def _lint_barrier_divergence(thread_loop: Operation,
                             findings: List[LintFinding]) -> None:
    ivs = set(thread_loop.body_block().args)
    for barrier in _barriers_under(thread_loop):
        for ancestor in _gating_path(barrier, thread_loop):
            if ancestor.name == scf.WHILE:
                findings.append(LintFinding(
                    BARRIER_DIVERGENT, WARNING,
                    "barrier inside scf.while: convergence cannot be "
                    "proven", barrier))
                continue
            kind = _divergence_kind(_shape_values(ancestor), ivs)
            if kind == ERROR:
                findings.append(LintFinding(
                    BARRIER_DIVERGENT, ERROR,
                    "barrier under %s whose shape depends on the thread "
                    "index: threads will not all reach it (undefined "
                    "behaviour)" % ancestor.name, barrier))
            elif kind == WARNING:
                findings.append(LintFinding(
                    BARRIER_DIVERGENT, WARNING,
                    "barrier under %s whose shape may depend on the "
                    "thread index through memory" % ancestor.name,
                    barrier))


def _lint_block_dependence(block_loop: Operation,
                           findings: List[LintFinding]) -> None:
    ivs = set(block_loop.body_block().args)
    for barrier in _barriers_under(block_loop):
        for ancestor in _gating_path(barrier, block_loop):
            if ancestor.name == scf.WHILE:
                findings.append(LintFinding(
                    BARRIER_BLOCK_DEPENDENT, NOTE,
                    "barrier inside scf.while: block coarsening cannot "
                    "jam it (§V-C)", barrier))
                continue
            if _divergence_kind(_shape_values(ancestor), ivs) is not None:
                findings.append(LintFinding(
                    BARRIER_BLOCK_DEPENDENT, NOTE,
                    "barrier under %s whose shape depends on the block "
                    "index: block coarsening would have to duplicate it "
                    "and is illegal (§V-C)" % ancestor.name, barrier))


def _shared_buffers(block_loop: Operation) -> Set[Value]:
    shared: Set[Value] = set()

    def visit(op: Operation) -> None:
        if op.name in ("memref.alloca", "memref.alloc") and op.results:
            type_ = op.result().type
            if isinstance(type_, MemRefType) and \
                    type_.memory_space == "shared":
                shared.add(op.result())
    block_loop.walk_preorder(visit, include_self=False)
    return shared


def _lint_shared_races(block_loop: Operation, thread_loop: Operation,
                       findings: List[LintFinding]) -> None:
    shared = _shared_buffers(block_loop)
    if not shared:
        return
    ivs = set(thread_loop.body_block().args)

    def uniform(value: Value) -> bool:
        return is_uniform_in(value, ivs, loads_are_dependent=False)

    for store in thread_loop.ops_matching("memref.store"):
        if store.operand(1) not in shared:
            continue
        # every thread executes this store (no thread-dependent guard)...
        if any(not all(uniform(v) for v in _shape_values(a))
               for a in _gating_path(store, thread_loop)):
            continue
        # ...at the same address...
        if not all(uniform(v) for v in store.operands[2:]):
            continue
        # ...with (possibly) different values: write-write race. A
        # uniform stored value makes the race benign.
        if uniform(store.operand(0)):
            continue
        findings.append(LintFinding(
            SHARED_WRITE_RACE, WARNING,
            "all threads store a thread-dependent value to the same "
            "shared-memory location without an intervening guard "
            "(write-write race)", store))


def lint_wrapper(wrapper: Operation, label: str = "") -> LintReport:
    """Run every lint rule over one ``polygeist.gpu_wrapper``."""
    from ..transforms.coarsen import (CoarsenError, block_parallels,
                                      thread_parallel)
    report = LintReport(wrapper=label)
    for block_loop in block_parallels(wrapper, include_epilogues=False):
        _lint_block_dependence(block_loop, report.findings)
        try:
            thread_loop = thread_parallel(block_loop)
        except CoarsenError:
            continue
        _lint_barrier_divergence(thread_loop, report.findings)
        _lint_shared_races(block_loop, thread_loop, report.findings)
    return report


def lint_module(module: Module) -> List[LintReport]:
    """Lint every gpu_wrapper in a module, labelled by enclosing func."""
    reports: List[LintReport] = []
    for func_op in module.body.ops:
        if func_op.name != "func.func":
            continue
        for wrapper in polygeist.find_gpu_wrappers(func_op):
            reports.append(lint_wrapper(
                wrapper, label=str(func_op.attr("sym_name") or "")))
    return reports


def block_coarsening_illegal(wrapper: Operation) -> bool:
    """Lint's verdict on §V-C: does any barrier make block coarsening
    illegal for this wrapper? (Cross-checked in tests against
    ``check_unroll_legality`` on the block loops.)"""
    report = lint_wrapper(wrapper)
    return bool(report.by_rule(BARRIER_BLOCK_DEPENDENT))
