"""Hypothesis-based kernel fuzzer for the transform-validation harness.

Generates small random CUDA kernels with *adversarial barrier placements* —
barriers nested under uniform ``for`` loops (the jam path of Fig. 8),
under uniform guards (the ``scf.if`` jam path), next to thread-divergent
guards without barriers, and in multi-phase shared-memory pipelines — and
asserts that :func:`~repro.transforms.unroll_interleave.unroll_and_interleave`'s
merge-vs-duplicate decisions agree with interpreter semantics:

* if a coarsening config is accepted, the transformed kernel must produce
  bit-identical results to the baseline on seeded inputs;
* if it is rejected (:class:`~repro.transforms.coarsen.CoarsenError` /
  ``IllegalUnroll``), that is always sound — conservatism is allowed;
* if the *baseline* already traps with a
  :class:`~repro.interpreter.ConvergenceError`, the kernel itself has
  undefined behaviour and the example is discarded.

The strategies live here (not in the test file) so the CI fuzz job and
the regression tests share one generator.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

try:
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the repo
    st = None
    HAVE_HYPOTHESIS = False

#: fixed launch geometry for fuzzed kernels: small enough to interpret
#: thousands of examples, big enough that factors 2 and 4 divide and 3
#: does not
FUZZ_BLOCK = 8
FUZZ_GRID = 4
FUZZ_N = FUZZ_BLOCK * FUZZ_GRID

#: the coarsening configs every fuzzed kernel is checked under
FUZZ_CONFIGS = (
    {"thread_total": 2},
    {"thread_total": 4},
    {"block_total": 2},
    {"block_total": 3},           # non-divisor: epilogue path
    {"block_total": 2, "thread_total": 2},
)


if HAVE_HYPOTHESIS:

    @st.composite
    def expressions(draw, depth: int = 0):
        """A float expression over t (thread), b (block), x, v."""
        if depth >= 2 or draw(st.booleans()):
            return draw(st.sampled_from([
                "x", "(float)t", "(float)b", "2.5f", "0.5f", "v",
            ]))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return "(%s %s %s)" % (draw(expressions(depth=depth + 1)), op,
                               draw(expressions(depth=depth + 1)))

    @st.composite
    def barrier_phases(draw):
        """A shared-memory phase: sync, write tile, sync, read a neighbor.

        The leading barrier orders this phase's write after any previous
        phase's neighbor reads — without it the generated kernel itself
        would have a read-write race (UB even before any transform).
        """
        shift = draw(st.integers(0, FUZZ_BLOCK - 1))
        return [
            "__syncthreads();",
            "tile[t] = %s;" % draw(expressions()),
            "__syncthreads();",
            "v = v + tile[(t + %d) %% %d];" % (shift, FUZZ_BLOCK),
        ]

    @st.composite
    def barrier_in_uniform_loop(draw):
        """Barrier under a uniform-bound for: the Fig. 8 jam path."""
        trips = draw(st.integers(1, 3))
        inner = draw(barrier_phases())
        return (["for (int j = 0; j < %d; j++) {" % trips]
                + ["    " + line for line in inner]
                + ["    v = v + (float)j;", "}"])

    @st.composite
    def barrier_in_uniform_guard(draw):
        """Barrier under a block-uniform guard: the scf.if jam path.

        The guard condition depends on nothing thread- or block-varying,
        so merging the barrier is legal under thread coarsening and the
        condition check must accept it.
        """
        inner = draw(barrier_phases())
        return (["if (n > %d) {" % draw(st.integers(0, 2))]
                + ["    " + line for line in inner] + ["}"])

    @st.composite
    def divergent_guard(draw):
        """Thread-divergent guard WITHOUT a barrier (always legal)."""
        threshold = draw(st.integers(1, FUZZ_BLOCK - 1))
        return ["if (t < %d) { v = v + %s; }" %
                (threshold, draw(expressions()))]

    @st.composite
    def block_dependent_guard_with_barrier(draw):
        """Barrier under a block-dependent guard: §V-C illegality — block
        coarsening must refuse, thread coarsening may accept."""
        inner = draw(barrier_phases())
        return (["if (b < %d) {" % draw(st.integers(1, FUZZ_GRID - 1))]
                + ["    " + line for line in inner] + ["}"])

    @st.composite
    def fuzz_kernels(draw):
        """A random kernel exercising the merge-vs-duplicate decisions."""
        lines = [
            "__shared__ float tile[%d];" % FUZZ_BLOCK,
            "int t = threadIdx.x;",
            "int b = blockIdx.x;",
            "int g = b * blockDim.x + t;",
            "float x = in[g];",
            "float v = 0.0f;",
        ]
        n_features = draw(st.integers(1, 3))
        for _ in range(n_features):
            feature = draw(st.sampled_from([
                "phase", "loop", "uniform_guard", "divergent_guard",
                "block_guard",
            ]))
            if feature == "phase":
                lines.extend(draw(barrier_phases()))
            elif feature == "loop":
                lines.extend(draw(barrier_in_uniform_loop()))
            elif feature == "uniform_guard":
                lines.extend(draw(barrier_in_uniform_guard()))
            elif feature == "divergent_guard":
                lines.extend(draw(divergent_guard()))
            else:
                lines.extend(draw(block_dependent_guard_with_barrier()))
        lines.append("out[g] = v;")
        body = "\n    ".join(lines)
        return ("__global__ void k(float *in, float *out, int n) "
                "{\n    %s\n}" % body)


class FuzzOutcome:
    """Result of checking one kernel under one config."""

    __slots__ = ("status", "detail")

    def __init__(self, status: str, detail: str = ""):
        self.status = status    # "equal", "rejected", "ub", "diverged"
        self.detail = detail

    def __repr__(self) -> str:
        return "FuzzOutcome(%s%s)" % (
            self.status, ", %s" % self.detail if self.detail else "")


def run_fuzz_kernel(source: str, config: Optional[Dict[str, object]],
                    data: np.ndarray) -> np.ndarray:
    """Build, optionally coarsen, and interpret one fuzzed kernel."""
    from ..dialects import polygeist
    from ..frontend import ModuleGenerator, parse_translation_unit
    from ..interpreter import MemoryBuffer, run_module
    from ..ir import F32, verify_module
    from ..transforms import coarsen_wrapper, run_cleanup

    generator = ModuleGenerator(parse_translation_unit(source))
    name = generator.get_launch_wrapper("k", 1, (FUZZ_BLOCK,))
    run_cleanup(generator.module)
    if config:
        wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
        coarsen_wrapper(wrapper, **config)
        run_cleanup(generator.module)
    verify_module(generator.module)
    src = MemoryBuffer((FUZZ_N,), F32, data=data)
    out = MemoryBuffer((FUZZ_N,), F32)
    run_module(generator.module, name, [FUZZ_GRID, src, out, FUZZ_N])
    return out.array


def check_transform_agreement(source: str, seed: int = 0,
                              configs: Sequence[Dict[str, object]]
                              = FUZZ_CONFIGS) -> Dict[str, FuzzOutcome]:
    """Assert the transform's decisions agree with interpreter semantics.

    Returns per-config outcomes; raises AssertionError (with the kernel
    source embedded) on a semantic divergence.
    """
    from ..interpreter import ConvergenceError
    from ..transforms.coarsen import CoarsenError

    rng = np.random.default_rng(seed)
    data = rng.random(FUZZ_N, dtype=np.float32)
    try:
        reference = run_fuzz_kernel(source, None, data)
    except ConvergenceError as error:
        # the kernel itself has UB; nothing for the transform to preserve
        return {"baseline": FuzzOutcome("ub", str(error))}
    outcomes: Dict[str, FuzzOutcome] = {}
    for config in configs:
        key = ", ".join("%s=%s" % kv for kv in sorted(config.items()))
        try:
            result = run_fuzz_kernel(source, config, data)
        except CoarsenError as error:
            # conservative rejection is always sound
            outcomes[key] = FuzzOutcome("rejected", str(error))
            continue
        if np.array_equal(result, reference):
            outcomes[key] = FuzzOutcome("equal")
        else:
            outcomes[key] = FuzzOutcome("diverged")
            raise AssertionError(
                "config {%s} accepted but changed results for:\n%s"
                % (key, source))
    return outcomes
