"""Transform validation: differential equivalence, lint, and fuzzing.

The three layers of the correctness story (see ``docs/VALIDATION.md``):

* :mod:`~repro.validate.differential` — run baseline and alternatives
  through the interpreter on seeded inputs and diff device memory;
* :mod:`~repro.validate.lint` — static barrier-legality lint over
  gpu_wrapper IR (thread divergence, §V-C block dependence, shared-memory
  write races);
* :mod:`~repro.validate.fuzz` — hypothesis strategies generating
  adversarial barrier placements, checking the transforms' accept/reject
  decisions against interpreter semantics.
"""

from .differential import (AlternativeVerdict, BufferDiff, ValidationReport,
                           compare_buffers, validate_alternatives,
                           validate_benchmark, validate_source,
                           DIVERGED, ERROR, OK, SKIPPED)
from .lint import (LintFinding, LintReport, block_coarsening_illegal,
                   lint_module, lint_wrapper,
                   BARRIER_BLOCK_DEPENDENT, BARRIER_DIVERGENT,
                   SHARED_WRITE_RACE)

__all__ = [
    "AlternativeVerdict", "BARRIER_BLOCK_DEPENDENT", "BARRIER_DIVERGENT",
    "BufferDiff", "DIVERGED", "ERROR", "LintFinding", "LintReport", "OK",
    "SHARED_WRITE_RACE", "SKIPPED", "ValidationReport",
    "block_coarsening_illegal", "compare_buffers", "lint_module",
    "lint_wrapper", "validate_alternatives", "validate_benchmark",
    "validate_source",
]
