"""Differential equivalence harness: baseline vs. generated alternatives.

The paper claims unroll-and-interleave and the coarsening transforms built
on it are semantics-preserving (§IV, §V). This module *checks* that claim
on real executions: the uncoarsened kernel and every generated alternative
are run through :mod:`repro.interpreter` on identical seeded inputs, and
the final device-memory snapshots are compared — exactly for integer
buffers, within a tolerance for floats (atomics may legally reassociate).

Three entry points:

* :func:`validate_alternatives` — the tuning-gate form, applied to a
  ``polygeist.alternatives`` op in place (used by ``tune --validate`` /
  ``$REPRO_VALIDATE``);
* :func:`validate_source` — compile a ``.cu`` source, generate the
  coarsening alternatives for a kernel, and validate all of them;
* :func:`validate_benchmark` — run a whole benchsuite entry with each
  coarsening config and compare its outputs against the untransformed
  tier.

A failed comparison carries a :class:`BufferDiff` — a minimized view of
the offending buffer (first mismatching element, a bounded sample of
mismatches, the worst error) rather than a memory dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dialects import polygeist
from ..ir import FloatType, IndexType, IntegerType, MemRefType, Module, \
    Operation, Value
from ..interpreter import ConvergenceError, Interpreter, InterpreterError, \
    MemoryBuffer

#: default interpreter step budget per validation run; keeps validation
#: bounded at paper-scale grids (runs that exceed it are *skipped*, not
#: failed)
DEFAULT_MAX_STEPS = 2_000_000

#: default grid cap per dimension: semantics preservation must hold for
#: any grid, so validating on a small one keeps interpretation cheap
DEFAULT_GRID_CAP = 4

#: float comparison tolerances (atomics may reassociate reductions)
DEFAULT_RTOL = 1e-5
DEFAULT_ATOL = 1e-8

#: verdict states
OK = "ok"
DIVERGED = "diverged"
ERROR = "error"
SKIPPED = "skipped"


@dataclass
class BufferDiff:
    """Minimized description of one diverging buffer."""

    buffer: str                 # argument label, e.g. "arg2"
    argument: int               # func argument position
    elements: int
    mismatches: int
    first_index: int
    #: up to ``_SAMPLE`` (linear index, baseline, alternative) triples
    samples: List[Tuple[int, object, object]] = field(default_factory=list)
    max_error: float = 0.0

    _SAMPLE = 8

    def summarize(self) -> str:
        lines = ["%s: %d of %d elements differ (max error %.3e), first at "
                 "[%d]" % (self.buffer, self.mismatches, self.elements,
                           self.max_error, self.first_index)]
        for index, want, got in self.samples:
            lines.append("  [%d] baseline=%s alternative=%s" %
                         (index, want, got))
        if self.mismatches > len(self.samples):
            lines.append("  ... %d more" %
                         (self.mismatches - len(self.samples)))
        return "\n".join(lines)


@dataclass
class AlternativeVerdict:
    """Validation outcome for one alternative."""

    desc: str
    status: str                 # OK / DIVERGED / ERROR / SKIPPED
    detail: str = ""
    diff: Optional[BufferDiff] = None

    @property
    def passed(self) -> bool:
        return self.status in (OK, SKIPPED)

    def explain(self) -> str:
        if self.status == DIVERGED and self.diff is not None:
            return "%s: diverged\n%s" % (self.desc, self.diff.summarize())
        suffix = " (%s)" % self.detail if self.detail else ""
        return "%s: %s%s" % (self.desc, self.status, suffix)


@dataclass
class ValidationReport:
    """Everything the harness decided for one kernel wrapper."""

    label: str = ""
    verdicts: List[AlternativeVerdict] = field(default_factory=list)
    #: set when the baseline itself could not be executed (validation is
    #: then inconclusive and every alternative is reported as skipped)
    baseline_note: str = ""

    @property
    def ok(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def first_divergence(self) -> Optional[AlternativeVerdict]:
        for verdict in self.verdicts:
            if not verdict.passed:
                return verdict
        return None

    def keep_indices(self) -> List[int]:
        return [i for i, v in enumerate(self.verdicts) if v.passed]

    def summary(self) -> str:
        lines = ["validation of %s:" % (self.label or "<kernel>")]
        if self.baseline_note:
            lines.append("  baseline not executable: %s" %
                         self.baseline_note)
        for verdict in self.verdicts:
            first, *rest = verdict.explain().splitlines()
            lines.append("  %s" % first)
            lines.extend("  %s" % line for line in rest)
        return "\n".join(lines)


# -- argument seeding ----------------------------------------------------------


def _enclosing_func(op: Operation) -> Operation:
    current = op
    while current is not None and current.name != "func.func":
        current = current.parent_op
    if current is None:
        raise ValueError("operation is not nested in a func.func")
    return current


def _root_module(op: Operation) -> Module:
    root = op
    while root.parent_op is not None:
        root = root.parent_op
    if root.name != "builtin.module":
        raise ValueError("operation is not nested in a module")
    return Module(root)


def _thread_extent_product(wrapper: Operation) -> int:
    """Product of the static thread extents of the wrapper's first block
    loop (the launch block shape); 64 per dynamic dimension."""
    from ..transforms.coarsen import (CoarsenError, block_parallels,
                                      parallel_extents, thread_parallel)
    total = 1
    try:
        loops = block_parallels(wrapper)
        if not loops:
            return 64
        thread_loop = thread_parallel(loops[0])
    except CoarsenError:
        return 64
    for extent in parallel_extents(thread_loop):
        total *= extent if extent and extent > 0 else 64
    return max(total, 1)


@dataclass
class _ArgSpec:
    """How to materialize one function argument for a validation run."""

    kind: str                   # "scalar" or "memref"
    value: object = None        # scalars: the concrete value
    type_: object = None        # memrefs: the MemRefType
    sizes: Tuple[int, ...] = ()
    seed: int = 0

    def materialize(self) -> object:
        if self.kind == "scalar":
            return self.value
        buffer = MemoryBuffer.for_type(self.type_, list(self.sizes))
        rng = np.random.default_rng(self.seed)
        if isinstance(self.type_.element, FloatType):
            buffer.array[...] = (rng.random(buffer.shape) * 2.0 - 1.0
                                 ).astype(buffer.array.dtype)
        elif buffer.array.dtype != np.bool_:
            buffer.array[...] = rng.integers(
                0, 4, buffer.shape).astype(buffer.array.dtype)
        return buffer


#: fallback values for free integer scalars when the total thread count
#: makes the baseline index out of bounds (size-like scalars often have to
#: cohere with statically-shaped buffers in ways seeding cannot know)
_INT_SCALAR_LADDER = (None, 16, 4, 2, 1)


def build_arg_specs(func_op: Operation, grid_env: Dict[Value, int],
                    wrapper: Operation, seed: int = 0,
                    grid_cap: int = DEFAULT_GRID_CAP,
                    int_value: Optional[int] = None) -> List[_ArgSpec]:
    """Concrete seeded arguments for a launch-wrapper function.

    Grid arguments (those in ``grid_env``) are capped to keep
    interpretation cheap; dynamic memref dimensions and free integer
    scalars are sized to the total thread count so typical global-id
    indexing stays in bounds. ``int_value`` overrides the value given to
    free integer scalars (the :data:`_INT_SCALAR_LADDER` retry path).
    """
    args = list(func_op.body_block().args)
    grids = [max(1, min(int(grid_env[a]), grid_cap))
             for a in args if a in grid_env]
    total = int(np.prod(grids or [1])) * _thread_extent_product(wrapper)
    rng = np.random.default_rng(seed)
    specs: List[_ArgSpec] = []
    grid_iter = iter(grids)
    for position, arg in enumerate(args):
        if arg in grid_env:
            specs.append(_ArgSpec("scalar", value=next(grid_iter)))
        elif isinstance(arg.type, MemRefType):
            dynamic = sum(1 for extent in arg.type.shape if extent < 0)
            specs.append(_ArgSpec("memref", type_=arg.type,
                                  sizes=(total,) * dynamic,
                                  seed=seed + 7919 * position))
        elif isinstance(arg.type, FloatType):
            specs.append(_ArgSpec("scalar",
                                  value=float(rng.random() + 0.5)))
        elif isinstance(arg.type, (IntegerType, IndexType)):
            specs.append(_ArgSpec(
                "scalar", value=total if int_value is None else int_value))
        else:
            raise ValueError("cannot seed argument of type %s" % arg.type)
    return specs


# -- snapshot comparison -------------------------------------------------------


def compare_buffers(baseline: np.ndarray, candidate: np.ndarray,
                    label: str, argument: int,
                    rtol: float = DEFAULT_RTOL,
                    atol: float = DEFAULT_ATOL) -> Optional[BufferDiff]:
    """None when equal (exact for ints, tolerant for floats)."""
    want = baseline.ravel()
    got = candidate.ravel()
    if np.issubdtype(want.dtype, np.floating):
        mismatch = ~np.isclose(got, want, rtol=rtol, atol=atol,
                               equal_nan=True)
    else:
        mismatch = got != want
    if not mismatch.any():
        return None
    where = np.flatnonzero(mismatch)
    if np.issubdtype(want.dtype, np.floating):
        with np.errstate(invalid="ignore"):
            errors = np.abs(got[where].astype(np.float64) -
                            want[where].astype(np.float64))
        max_error = float(np.nanmax(errors)) if errors.size else 0.0
    else:
        max_error = float(np.max(np.abs(
            got[where].astype(np.int64) - want[where].astype(np.int64))))
    samples = [(int(i), want[i].item(), got[i].item())
               for i in where[:BufferDiff._SAMPLE]]
    return BufferDiff(buffer=label, argument=argument,
                      elements=int(want.size), mismatches=int(where.size),
                      first_index=int(where[0]), samples=samples,
                      max_error=max_error)


def _snapshot_diff(specs: Sequence[_ArgSpec], baseline: Sequence[object],
                   candidate: Sequence[object], rtol: float, atol: float
                   ) -> Optional[BufferDiff]:
    for position, spec in enumerate(specs):
        if spec.kind != "memref":
            continue
        diff = compare_buffers(baseline[position].array,
                               candidate[position].array,
                               "arg%d" % position, position,
                               rtol=rtol, atol=atol)
        if diff is not None:
            return diff
    return None


def _budget_exceeded(error: Exception) -> bool:
    return "step budget" in str(error)


# -- gate-mode validation ------------------------------------------------------


def validate_alternatives(baseline_func: Operation, alt_op: Operation,
                          grid_env: Dict[Value, int],
                          wrapper_for_sizing: Operation,
                          seed: int = 0,
                          rtol: float = DEFAULT_RTOL,
                          atol: float = DEFAULT_ATOL,
                          max_steps: int = DEFAULT_MAX_STEPS,
                          grid_cap: int = DEFAULT_GRID_CAP
                          ) -> ValidationReport:
    """Differentially validate every region of an alternatives op.

    ``baseline_func`` is a *detached clone* of the enclosing function taken
    before alternative generation replaced the wrapper body; it is executed
    via :meth:`Interpreter.run_block`. Each alternative is executed through
    the live module with a fixed alternative selector. All runs see
    identically seeded inputs.
    """
    func_op = _enclosing_func(alt_op)
    module = _root_module(alt_op)
    label = str(func_op.attr("sym_name") or "<wrapper>")
    descs = polygeist.alternative_descs(alt_op)
    report = ValidationReport(label=label)

    # walk the scalar ladder until the baseline executes: a step budget
    # blowout or an error unrelated to seeding will not improve with a
    # smaller size scalar, so only retry on out-of-bounds accesses
    specs: Optional[List[_ArgSpec]] = None
    baseline_args: List[object] = []
    reason = ""
    for int_value in _INT_SCALAR_LADDER:
        trial = build_arg_specs(func_op, grid_env, wrapper_for_sizing,
                                seed=seed, grid_cap=grid_cap,
                                int_value=int_value)
        args = [spec.materialize() for spec in trial]
        try:
            interp = Interpreter(module, max_steps=max_steps)
            interp.run_block(baseline_func.body_block(), args)
        except (InterpreterError, IndexError) as error:
            reason = "step budget exceeded" if _budget_exceeded(error) \
                else str(error)
            if "out-of-bounds" not in str(error):
                break
            continue
        specs, baseline_args = trial, args
        break
    if specs is None:
        report.baseline_note = reason
        report.verdicts = [
            AlternativeVerdict(desc, SKIPPED,
                               "baseline not executable: %s" % reason)
            for desc in descs]
        return report

    # coarsening legally reorders threads and blocks, so equivalence is
    # only checkable when the baseline itself is order-insensitive: run it
    # again with reversed parallel order and demand identical results
    # (seeded scalars can alias indices that are distinct in real launches,
    # manufacturing races the original program does not have)
    reversed_args = [spec.materialize() for spec in specs]
    try:
        interp = Interpreter(module, max_steps=max_steps,
                             reverse_parallel=True)
        interp.run_block(baseline_func.body_block(), reversed_args)
        race = _snapshot_diff(specs, baseline_args, reversed_args,
                              rtol, atol)
    except (InterpreterError, IndexError) as error:
        race = None
        report.baseline_note = "baseline not order-insensitive: %s" % error
    if race is not None:
        report.baseline_note = ("baseline is order-dependent under seeded "
                                "inputs (data race on %s)" % race.buffer)
    if report.baseline_note:
        report.verdicts = [
            AlternativeVerdict(desc, SKIPPED, report.baseline_note)
            for desc in descs]
        return report

    for index, desc in enumerate(descs):
        args = [spec.materialize() for spec in specs]
        try:
            interp = Interpreter(
                module, max_steps=max_steps,
                alternative_selector=lambda op, index=index: index)
            interp.run_func(label, args)
        except ConvergenceError as error:
            report.verdicts.append(AlternativeVerdict(
                desc, ERROR, "barrier divergence: %s" % error))
            continue
        except (InterpreterError, IndexError) as error:
            if _budget_exceeded(error):
                report.verdicts.append(AlternativeVerdict(
                    desc, SKIPPED, "step budget exceeded"))
            else:
                report.verdicts.append(AlternativeVerdict(
                    desc, ERROR, str(error)))
            continue
        diff = _snapshot_diff(specs, baseline_args, args, rtol, atol)
        if diff is None:
            report.verdicts.append(AlternativeVerdict(desc, OK))
        else:
            report.verdicts.append(AlternativeVerdict(
                desc, DIVERGED, diff=diff))
    return report


# -- source-mode validation ----------------------------------------------------


def validate_source(source: str, kernel: str, grid: Sequence[int],
                    block: Sequence[int],
                    configs: Optional[Sequence[Dict[str, object]]] = None,
                    seed: int = 0,
                    rtol: float = DEFAULT_RTOL,
                    atol: float = DEFAULT_ATOL,
                    max_steps: int = DEFAULT_MAX_STEPS,
                    grid_cap: int = DEFAULT_GRID_CAP) -> ValidationReport:
    """Compile ``kernel``, generate all coarsening alternatives, and
    validate each against the untransformed baseline."""
    from ..autotune.search import default_configs
    from ..frontend import ModuleGenerator, parse_translation_unit
    from ..transforms import run_cleanup
    from ..transforms.alternatives import generate_coarsening_alternatives

    if configs is None:
        configs = default_configs()
    unit = parse_translation_unit(source)
    generator = ModuleGenerator(unit)
    name = generator.get_launch_wrapper(kernel, len(grid), tuple(block))
    run_cleanup(generator.module)
    func_op = generator.module.func(name)
    baseline_func = func_op.clone({})
    wrapper = polygeist.find_gpu_wrappers(func_op)[0]
    sizing_wrapper = polygeist.find_gpu_wrappers(baseline_func)[0]
    grid_env = dict(zip(func_op.body_block().args, grid))
    generation = generate_coarsening_alternatives(wrapper, configs)
    if generation.op is None:
        report = ValidationReport(label=name)
        report.baseline_note = "no legal coarsening configuration: %s" % \
            "; ".join(generation.rejected)
        return report
    run_cleanup(generator.module)
    return validate_alternatives(baseline_func, generation.op, grid_env,
                                 sizing_wrapper, seed=seed, rtol=rtol,
                                 atol=atol, max_steps=max_steps,
                                 grid_cap=grid_cap)


# -- benchmark-mode validation -------------------------------------------------


#: the default coarsening configs exercised by ``repro validate <bench>``
BENCH_CONFIGS: Tuple[Dict[str, object], ...] = (
    {"thread_total": 2},
    {"thread_total": 4},
    {"block_total": 2},
    {"block_total": 4},
)


def validate_benchmark(name: str, arch,
                       configs: Optional[Sequence[Dict[str, object]]] = None,
                       size: Optional[int] = None, seed: int = 0,
                       rtol: float = DEFAULT_RTOL,
                       atol: float = DEFAULT_ATOL) -> ValidationReport:
    """Differentially validate a benchsuite entry end to end.

    The benchmark's full host driver runs once on the untransformed tier
    (``polygeist-noopt``) and once per coarsening config
    (``tier="polygeist"`` pinned to that single config); outputs must
    match. Configs the tuner could not apply to any kernel (illegal
    coarsening falls back to the untransformed kernel) are reported as
    skipped rather than trivially passing.
    """
    from ..benchsuite import get_benchmark
    from ..pipeline import Program
    from ..runtime import GPURuntime

    bench = get_benchmark(name)
    size = size or bench.verify_size
    if configs is None:
        configs = BENCH_CONFIGS
    inputs = bench.build_inputs(size, seed)

    def run(tier, config):
        program = Program(bench.source, arch=arch, tier=tier,
                          autotune_configs=[config] if config else None)
        runtime = GPURuntime(arch)
        copied = {k: np.array(v) for k, v in inputs.items()}
        outputs = bench.run_gpu(program, runtime, copied, size)
        return outputs, program

    report = ValidationReport(label=name)
    try:
        baseline, _ = run("polygeist-noopt", None)
    except Exception as error:  # inconclusive, not a divergence
        report.baseline_note = "%s: %s" % (type(error).__name__, error)
        return report

    for config in configs:
        desc = ", ".join("%s=%s" % kv for kv in sorted(config.items()))
        try:
            outputs, program = run("polygeist", config)
        except Exception as error:
            report.verdicts.append(AlternativeVerdict(
                desc, ERROR, "%s: %s" % (type(error).__name__, error)))
            continue
        applied = any(
            outcome.selected_config
            for outcome in program.tuning_outcomes.values())
        diff = None
        for position, key in enumerate(sorted(baseline)):
            diff = compare_buffers(np.asarray(baseline[key]),
                                   np.asarray(outputs[key]), key,
                                   position, rtol=rtol, atol=atol)
            if diff is not None:
                break
        if diff is not None:
            report.verdicts.append(AlternativeVerdict(
                desc, DIVERGED, diff=diff))
        elif not applied:
            report.verdicts.append(AlternativeVerdict(
                desc, SKIPPED, "config not applied to any kernel"))
        else:
            report.verdicts.append(AlternativeVerdict(desc, OK))
    return report
