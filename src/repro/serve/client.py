"""A stdlib-only client for the ``repro serve`` daemon.

:class:`ServeClient` wraps the daemon's JSON API with plain
``urllib.request`` calls — no third-party HTTP stack — so scripts, CI
smoke tests, and the ``repro submit`` subcommand all talk to the daemon
the same way:

>>> client = ServeClient("http://127.0.0.1:8321")
>>> job = client.submit({"benchmark": "lud", "arch": "a100"})
>>> result = client.wait(job["job"])
>>> result["cache_hit"], result["seconds"]

Resilience is built in, not outsourced to every caller:

* 429 (queue full) and 503 (draining) responses are retried up to
  ``retries`` times with exponential backoff plus jitter, honoring the
  server's ``Retry-After`` header when present — pass ``retries=0`` for
  the raw fail-fast behavior;
* :meth:`wait` distinguishes a *slow* job from a *dead* daemon: a
  transport failure mid-poll re-probes once and then fails fast with a
  clear message instead of silently polling out the full timeout.

Server-side rejections (400, and 429/503 once the retry budget is
spent) raise :class:`ServeError` carrying the HTTP status (``0`` for
transport failures) and the server's error message.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServeError(Exception):
    """A non-2xx daemon response (or an unreachable daemon)."""

    def __init__(self, message: str, status: int = 0,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        #: the server's Retry-After header, parsed, when it sent one
        self.retry_after = retry_after


#: statuses worth retrying: the server said "not now", not "never"
RETRYABLE = (429, 503)


class ServeClient:
    """Talks to one ``repro serve`` daemon."""

    def __init__(self, base_url: str = "http://127.0.0.1:8321",
                 timeout: float = 30.0, retries: int = 2,
                 backoff: float = 0.25, max_backoff: float = 8.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.max_backoff = max(self.backoff, float(max_backoff))

    # -- transport -----------------------------------------------------------

    def _retry_delay(self, error: ServeError, attempt: int) -> float:
        """Backoff before retry ``attempt``: the server's ``Retry-After``
        when it sent one, else exponential; jittered either way so N
        rejected clients do not reconverge on the same instant."""
        if error.retry_after is not None:
            base = min(error.retry_after, self.max_backoff)
        else:
            base = min(self.backoff * (2 ** attempt), self.max_backoff)
        return base + random.uniform(0.0, base / 4 if base else 0.05)

    def _call(self, path: str, payload: Optional[Dict[str, Any]] = None,
              accept: tuple = (200,)) -> Dict[str, Any]:
        for attempt in range(self.retries + 1):
            try:
                return self._call_once(path, payload, accept)
            except ServeError as error:
                if error.status not in RETRYABLE \
                        or attempt >= self.retries:
                    raise
                time.sleep(self._retry_delay(error, attempt))

    def _call_once(self, path: str,
                   payload: Optional[Dict[str, Any]] = None,
                   accept: tuple = (200,)) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        retry_after = None
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                status = response.status
                body = response.read()
        except urllib.error.HTTPError as error:
            status = error.code
            body = error.read()
            try:
                retry_after = float(error.headers.get("Retry-After"))
            except (TypeError, ValueError):
                retry_after = None
        except urllib.error.URLError as error:
            raise ServeError("cannot reach daemon at %s: %s" %
                             (self.base_url, error.reason))
        except OSError as error:
            # e.g. ConnectionResetError when the daemon dies mid-request
            raise ServeError("lost connection to daemon at %s: %s" %
                             (self.base_url, error))
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            decoded = {"error": body.decode("utf-8", "replace")}
        if status not in accept:
            raise ServeError(decoded.get("error",
                                         "HTTP %d from %s" % (status, url)),
                             status=status, retry_after=retry_after)
        decoded["_status"] = status
        return decoded

    # -- API -----------------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/tune``; returns ``{"job": ..., "state": ...}``."""
        return self._call("/v1/tune", payload=request)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — status incl. per-stage progress."""
        return self._call("/v1/jobs/%s" % job_id)

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result``; 202 (still running) is returned
        as the status payload with ``_status == 202``."""
        return self._call("/v1/jobs/%s/result" % job_id,
                          accept=(200, 202))

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job finishes; raises :class:`ServeError` on a
        failed job, on deadline expiry, or — fast — when the daemon dies
        mid-poll (transport errors re-probe once, then give up)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                payload = self.result(job_id)
            except ServeError as error:
                if error.status != 0:
                    raise
                # transport failure: slow daemon or dead daemon? one
                # short re-probe decides; a dead daemon fails fast here
                # instead of burning the rest of the wait timeout
                time.sleep(min(1.0, max(poll, 0.2)))
                if self.alive():
                    continue
                raise ServeError(
                    "daemon at %s became unreachable while waiting for "
                    "job %s (%s) — it likely died or restarted; once it "
                    "is back, the job ledger recovers accepted jobs and "
                    "this job id remains pollable" %
                    (self.base_url, job_id, error))
            if payload["_status"] == 200:
                if payload.get("state") == "failed":
                    raise ServeError("job %s failed: %s" %
                                     (job_id, payload.get("error", "")))
                return payload
            if time.monotonic() >= deadline:
                raise ServeError("timed out waiting for job %s "
                                 "(last state: %s)" %
                                 (job_id, payload.get("state")))
            time.sleep(poll)

    def cache_stats(self) -> Dict[str, Any]:
        return self._call("/v1/cache/stats")

    def ledger_stats(self) -> Dict[str, Any]:
        """``GET /v1/ledger`` — WAL occupancy + recovery counters."""
        return self._call("/v1/ledger")

    def fault_stats(self) -> Dict[str, Any]:
        """``GET /v1/faults`` — the daemon's active chaos plan, if any."""
        return self._call("/v1/faults")

    def health(self) -> Dict[str, Any]:
        return self._call("/healthz")

    def alive(self) -> bool:
        """True when the daemon answers ``/healthz`` at all."""
        try:
            self._call_once("/healthz")
            return True
        except ServeError:
            return False
