"""A stdlib-only client for the ``repro serve`` daemon.

:class:`ServeClient` wraps the daemon's JSON API with plain
``urllib.request`` calls — no third-party HTTP stack — so scripts, CI
smoke tests, and the ``repro submit`` subcommand all talk to the daemon
the same way:

>>> client = ServeClient("http://127.0.0.1:8321")
>>> job = client.submit({"benchmark": "lud", "arch": "a100"})
>>> result = client.wait(job["job"])
>>> result["cache_hit"], result["seconds"]

Server-side rejections (400/429/503...) raise :class:`ServeError`
carrying the HTTP status and the server's error message, so callers can
branch on ``error.status == 429`` to implement backoff.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServeError(Exception):
    """A non-2xx daemon response (or an unreachable daemon)."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talks to one ``repro serve`` daemon."""

    def __init__(self, base_url: str = "http://127.0.0.1:8321",
                 timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _call(self, path: str, payload: Optional[Dict[str, Any]] = None,
              accept: tuple = (200,)) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                status = response.status
                body = response.read()
        except urllib.error.HTTPError as error:
            status = error.code
            body = error.read()
        except urllib.error.URLError as error:
            raise ServeError("cannot reach daemon at %s: %s" %
                             (self.base_url, error.reason))
        except OSError as error:
            # e.g. ConnectionResetError when the daemon dies mid-request
            raise ServeError("lost connection to daemon at %s: %s" %
                             (self.base_url, error))
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            decoded = {"error": body.decode("utf-8", "replace")}
        if status not in accept:
            raise ServeError(decoded.get("error",
                                         "HTTP %d from %s" % (status, url)),
                             status=status)
        decoded["_status"] = status
        return decoded

    # -- API -----------------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/tune``; returns ``{"job": ..., "state": ...}``."""
        return self._call("/v1/tune", payload=request)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — status incl. per-stage progress."""
        return self._call("/v1/jobs/%s" % job_id)

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result``; 202 (still running) is returned
        as the status payload with ``_status == 202``."""
        return self._call("/v1/jobs/%s/result" % job_id,
                          accept=(200, 202))

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job finishes; raises :class:`ServeError` on a
        failed job or on deadline expiry."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(job_id)
            if payload["_status"] == 200:
                if payload.get("state") == "failed":
                    raise ServeError("job %s failed: %s" %
                                     (job_id, payload.get("error", "")))
                return payload
            if time.monotonic() >= deadline:
                raise ServeError("timed out waiting for job %s "
                                 "(last state: %s)" %
                                 (job_id, payload.get("state")))
            time.sleep(poll)

    def cache_stats(self) -> Dict[str, Any]:
        return self._call("/v1/cache/stats")

    def health(self) -> Dict[str, Any]:
        return self._call("/healthz")

    def alive(self) -> bool:
        """True when the daemon answers ``/healthz`` at all."""
        try:
            self.health()
            return True
        except ServeError:
            return False
