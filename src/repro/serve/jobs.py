"""Tune-request schema and the job runner for the ``repro serve`` daemon.

A :class:`TuneRequest` is the validated form of one ``POST /v1/tune``
body: either a benchsuite benchmark (``{"benchmark": "lud", "arch":
"a100"}``) or inline CUDA source (``{"source": "...", "kernel": "scale",
"grid": [64], "block": [256]}``), plus the tuning options (tier,
max-factor config bound, problem size). Its :meth:`TuneRequest.signature`
is the daemon's single-flight key: two requests with equal signatures are
the same tuning problem, so the queue serializes them and the second one
replays the first one's cached decision.

:func:`run_tune_job` is the module-level runner the daemon hands to
:class:`~repro.engine.scheduler.SweepScheduler` — module-level so it
pickles into worker processes. Each job builds a **fresh**
:class:`~repro.engine.TuningEngine` over the daemon's shared on-disk
:class:`~repro.engine.cache.TuningCache` directory, so cache hit/miss
accounting is exact per request while tuning decisions are shared across
every client (and every worker process) of the daemon.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs import decisions as obs_decisions

#: job lifecycle states, in order
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

STATES = (QUEUED, RUNNING, DONE, FAILED)


class RequestError(ValueError):
    """An invalid ``POST /v1/tune`` body (HTTP 400)."""


def _dims(value, name: str, default: Tuple[int, ...]) -> Tuple[int, ...]:
    if value is None:
        return default
    if isinstance(value, str):
        value = [part for part in value.split(",") if part]
    try:
        dims = tuple(int(part) for part in value)
    except (TypeError, ValueError):
        raise RequestError("%s must be a list of integers" % name)
    if not dims or any(d <= 0 for d in dims):
        raise RequestError("%s must be positive integers" % name)
    return dims


@dataclass(frozen=True)
class TuneRequest:
    """One validated tuning request."""

    arch: str                     # canonical architecture name
    tier: str = "polygeist"
    benchmark: Optional[str] = None
    source: Optional[str] = None
    kernel: Optional[str] = None  # source mode; None = first kernel
    grid: Tuple[int, ...] = (1024,)
    block: Tuple[int, ...] = (256,)
    max_factor: Optional[int] = None
    size: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TuneRequest":
        """Validate a request dict; raises :class:`RequestError`."""
        from ..benchsuite import BENCHMARKS
        from ..pipeline import TIERS
        from ..targets import arch_by_name

        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        benchmark = payload.get("benchmark")
        source = payload.get("source")
        if bool(benchmark) == bool(source):
            raise RequestError(
                "exactly one of 'benchmark' or 'source' is required")
        if benchmark is not None and benchmark not in BENCHMARKS:
            raise RequestError(
                "unknown benchmark %r (have: %s)" %
                (benchmark, ", ".join(sorted(BENCHMARKS))))
        try:
            arch = arch_by_name(str(payload.get("arch", "a100"))).name
        except KeyError as error:
            raise RequestError(str(error.args[0]))
        tier = payload.get("tier", "polygeist")
        if tier not in TIERS:
            raise RequestError("tier must be one of %s" % (TIERS,))
        max_factor = payload.get("max_factor")
        if max_factor is not None:
            try:
                max_factor = int(max_factor)
            except (TypeError, ValueError):
                raise RequestError("max_factor must be an integer")
            if max_factor < 1:
                raise RequestError("max_factor must be >= 1")
        size = payload.get("size")
        if size is not None:
            try:
                size = int(size)
            except (TypeError, ValueError):
                raise RequestError("size must be an integer")
            if size < 1:
                raise RequestError("size must be >= 1")
        kernel = payload.get("kernel")
        if kernel is not None and not isinstance(kernel, str):
            raise RequestError("kernel must be a string")
        return cls(arch=arch, tier=tier, benchmark=benchmark,
                   source=source, kernel=kernel,
                   grid=_dims(payload.get("grid"), "grid", (1024,)),
                   block=_dims(payload.get("block"), "block", (256,)),
                   max_factor=max_factor, size=size)

    def as_payload(self) -> Dict[str, Any]:
        """The picklable/JSON form shipped to scheduler workers."""
        return {
            "arch": self.arch, "tier": self.tier,
            "benchmark": self.benchmark, "source": self.source,
            "kernel": self.kernel, "grid": list(self.grid),
            "block": list(self.block), "max_factor": self.max_factor,
            "size": self.size,
        }

    def signature(self) -> str:
        """Content address of the tuning problem (single-flight key)."""
        from ..engine.cache import source_hash
        payload = self.as_payload()
        if self.source is not None:
            payload["source"] = source_hash(self.source)
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        target = self.benchmark if self.benchmark is not None \
            else "source:%s" % (self.kernel or "<first kernel>")
        return "%s on %s (%s)" % (target, self.arch, self.tier)


# -- the runner (module-level: must pickle into worker processes) ------------


def _configs(max_factor: Optional[int]):
    if max_factor is None:
        return None
    from ..autotune import paper_sweep_configs
    return paper_sweep_configs(max_product=max_factor)


def run_tune_job(payload: Dict[str, Any],
                 engine=None) -> Dict[str, Any]:
    """Execute one tuning request; returns a JSON-able result dict.

    ``payload`` is ``TuneRequest.as_payload()`` plus the daemon's
    ``cache_dir`` / ``cache_max_bytes`` / ``cache_max_entries``. A fresh
    engine over the shared cache directory is built unless the caller
    (the thread-isolation dispatcher, which wants live stage progress)
    passes one in.
    """
    from ..engine import EngineStats, TuningCache, TuningEngine
    from ..targets import arch_by_name

    request = TuneRequest.from_payload(payload)
    if engine is None:
        engine = TuningEngine(
            cache=TuningCache(payload.get("cache_dir"),
                              max_bytes=payload.get("cache_max_bytes"),
                              max_entries=payload.get("cache_max_entries")),
            stats=EngineStats())
    arch = arch_by_name(request.arch)
    configs = _configs(request.max_factor)
    log = obs_decisions.DecisionLog()
    start = time.perf_counter()
    with obs_decisions.logging_decisions(log):
        if request.benchmark is not None:
            from ..benchsuite.base import simulate_composite
            seconds = simulate_composite(
                request.benchmark, arch, tier=request.tier,
                autotune_configs=configs, size=request.size,
                engine=engine)
        else:
            from ..pipeline import Program
            program = Program(request.source, arch=arch,
                              tier=request.tier,
                              autotune_configs=configs, engine=engine)
            kernel = request.kernel
            if kernel is None:
                kernels = [f.name for f in program.unit.kernels()]
                if not kernels:
                    raise RequestError("no __global__ kernels in source")
                kernel = kernels[0]
            timing = program.model_launch(kernel, request.grid,
                                          request.block)
            seconds = timing.time_seconds
    wall = time.perf_counter() - start
    cache_stats = engine.cache.stats()
    decisions = log.as_dict()["decisions"]
    winners = [
        {"wrapper": decision["wrapper"],
         "desc": alternative["desc"],
         "time_seconds": alternative["time_seconds"]}
        for decision in decisions
        for alternative in decision["alternatives"]
        if alternative["selected"]]
    return {
        "request": request.as_payload(),
        "target": request.describe(),
        "seconds": seconds,
        "wall_seconds": wall,
        "cache": {
            "hits": cache_stats["hits"],
            "misses": cache_stats["misses"],
            "stores": cache_stats["stores"],
            "evictions": cache_stats["evictions"],
            "dump_errors": cache_stats["dump_errors"],
            "quarantined": cache_stats.get("quarantined", 0),
        },
        # fully warm: every tuning decision replayed from the shared cache
        "cache_hit": cache_stats["misses"] == 0 and cache_stats["hits"] > 0,
        "stages": engine.stats.stage_seconds,
        "counters": engine.stats.counters,
        "decisions": decisions,
        "winners": winners,
    }


# -- job records -------------------------------------------------------------


@dataclass
class JobRecord:
    """One submitted job's lifecycle, as tracked by the daemon."""

    id: str
    request: TuneRequest
    signature: str
    payload: Dict[str, Any]
    state: str = QUEUED
    #: wall-clock timestamps, for display only — never subtract these:
    #: time.time() jumps under NTP slew/step and DST, so durations come
    #: from the monotonic anchors below
    queued_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    _queued_mono: float = field(default_factory=time.monotonic, repr=False)
    _started_mono: Optional[float] = field(default=None, repr=False)
    _finished_mono: Optional[float] = field(default=None, repr=False)
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    attempts: int = 0
    timeouts: int = 0
    #: True when a restart re-admitted this job from the durable ledger
    recovered: bool = False
    #: live stage registry (thread isolation only): lets the status
    #: endpoint report per-stage progress while the job runs
    live_stats: Optional[object] = None
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def mark_running(self) -> None:
        with self._lock:
            self.state = RUNNING
            self.started_at = time.time()
            self._started_mono = time.monotonic()

    def finish(self, job_result) -> None:
        """Absorb the scheduler's :class:`JobResult`."""
        with self._lock:
            self.finished_at = time.time()
            self._finished_mono = time.monotonic()
            self.attempts = job_result.attempts
            self.timeouts = job_result.timeouts
            self.live_stats = None
            if job_result.ok:
                self.state = DONE
                self.result = job_result.value
            else:
                self.state = FAILED
                self.error = job_result.error

    @property
    def finished(self) -> bool:
        with self._lock:
            return self.state in (DONE, FAILED)

    def status_dict(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` payload."""
        with self._lock:
            now = time.monotonic()
            payload: Dict[str, Any] = {
                "job": self.id,
                "state": self.state,
                "target": self.request.describe(),
                "signature": self.signature,
                "queued_at": self.queued_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "attempts": self.attempts,
                "timeouts": self.timeouts,
                "recovered": self.recovered,
            }
            if self.state == QUEUED:
                payload["waiting_seconds"] = now - self._queued_mono
            elif self.state == RUNNING:
                payload["running_seconds"] = \
                    now - (self._started_mono or now)
                if self.live_stats is not None:
                    payload["stages"] = dict(self.live_stats.stage_seconds)
            else:
                payload["wall_seconds"] = \
                    (self._finished_mono or now) - \
                    (self._started_mono or now)
            if self.state == DONE and self.result is not None:
                payload["seconds"] = self.result["seconds"]
                payload["cache_hit"] = self.result["cache_hit"]
                payload["stages"] = self.result["stages"]
            if self.state == FAILED:
                payload["error"] = self.error
            return payload

    def result_dict(self) -> Optional[Dict[str, Any]]:
        """The ``GET /v1/jobs/<id>/result`` payload (None unless done)."""
        with self._lock:
            if self.state != DONE or self.result is None:
                return None
            payload = dict(self.result)
            payload["job"] = self.id
            payload["state"] = self.state
            return payload
