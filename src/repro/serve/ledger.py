"""Durable job ledger: an append-only, fsync'd JSONL write-ahead log.

The daemon's promise used to end at the process boundary: a ``kill -9``
lost every queued and in-flight job. :class:`JobLedger` moves the
source of truth to disk. Every job transition is one JSON line appended
(and fsync'd) to a segment file under ``<cache_dir>/ledger/`` **before**
the in-memory state changes direction:

* ``accepted``  — written before ``POST /v1/tune`` returns the job id,
  carrying the full job payload and its content-addressed signature;
* ``running``   — the dispatcher picked the job up;
* ``done``      — terminal, carrying the full result dict;
* ``failed``    — terminal, carrying the error;
* ``recovered`` — informational: a restart re-admitted this job.

On startup :meth:`JobLedger.recover` replays every segment oldest-first
into one state per job id: finished jobs answer ``GET /v1/jobs/<id>``
straight from the ledger (plus the shared
:class:`~repro.engine.cache.TuningCache` for the tuning decisions
themselves), and jobs whose last event was ``accepted``/``running``/
``recovered`` are re-admitted. Because re-runs replay the cache, a
``kill -9`` mid-job costs at most one re-run of the interrupted work.

Crash tolerance is structural, not best-effort:

* one record = one line, so a torn tail (the half-written line a
  ``kill -9`` leaves behind) is detected by its failed JSON parse,
  counted, and skipped — it can only ever be the in-flight append;
* every record carries a schema version; records from a newer schema
  are counted and skipped, never misread;
* segments rotate at ``max_segment_bytes`` and recovery **compacts**:
  the replayed state is rewritten as one fresh snapshot segment (bounded
  to the most recent ``keep_finished`` finished jobs plus every
  incomplete job) and the old segments are deleted, so the ledger's disk
  footprint is bounded by job count, not daemon uptime;
* an append that fails (full disk, injected fault) degrades durability,
  not availability: counted, warned once, and the job still runs.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import faults
from ..obs.log import get_logger

logger = get_logger("serve.ledger")

#: record schema version; bump when the record shape changes
LEDGER_SCHEMA = 1

#: ledger events, in lifecycle order (``recovered`` is informational)
EVENTS = ("accepted", "running", "done", "failed", "recovered")

_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.jsonl$")

#: events after which a job needs no re-run
_TERMINAL = ("done", "failed")


@dataclass
class LedgerState:
    """The collapsed per-job state after replaying every record."""

    job: str
    event: str = "accepted"
    signature: Optional[str] = None
    payload: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    accepted_ts: Optional[float] = None
    finished_ts: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.event in _TERMINAL


@dataclass
class _Segment:
    index: int
    path: str
    size: int = 0
    handle: Optional[object] = field(default=None, repr=False)


class JobLedger:
    """Append-only JSONL WAL under one directory (see module docs)."""

    def __init__(self, path: str,
                 max_segment_bytes: int = 4 * 1024 * 1024,
                 fsync: bool = True,
                 keep_finished: int = 512):
        self.path = path
        self.max_segment_bytes = max(4096, int(max_segment_bytes))
        self.fsync = bool(fsync)
        self.keep_finished = max(0, int(keep_finished))
        self._lock = threading.Lock()
        self._segment: Optional[_Segment] = None
        self.appends = 0
        self.append_errors = 0
        self.torn_records = 0
        self.skipped_records = 0
        self.rotations = 0
        self.compacted_away = 0
        self._append_error_logged = False
        os.makedirs(path, exist_ok=True)

    # -- segments ------------------------------------------------------------

    def _segment_name(self, index: int) -> str:
        return os.path.join(self.path, "wal-%06d.jsonl" % index)

    def segments(self) -> List[str]:
        """Segment paths, oldest first."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        indexed = []
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                indexed.append((int(match.group(1)),
                                os.path.join(self.path, name)))
        return [path for _, path in sorted(indexed)]

    def _next_index(self) -> int:
        last = 0
        for path in self.segments():
            match = _SEGMENT_RE.match(os.path.basename(path))
            if match:
                last = max(last, int(match.group(1)))
        return last + 1

    def _open_segment(self, index: int) -> _Segment:
        path = self._segment_name(index)
        handle = open(path, "a", encoding="utf-8")
        return _Segment(index=index, path=path,
                        size=os.path.getsize(path), handle=handle)

    def _ensure_segment(self, incoming: int) -> _Segment:
        # callers hold self._lock
        if self._segment is None:
            existing = self.segments()
            if existing:
                match = _SEGMENT_RE.match(os.path.basename(existing[-1]))
                self._segment = self._open_segment(int(match.group(1)))
            else:
                self._segment = self._open_segment(1)
        if self._segment.size + incoming > self.max_segment_bytes \
                and self._segment.size > 0:
            self._segment.handle.close()
            self._segment = self._open_segment(self._segment.index + 1)
            self.rotations += 1
            logger.debug("rotated ledger to %s", self._segment.path)
        return self._segment

    def close(self) -> None:
        """Release the active segment handle; appends reopen lazily."""
        with self._lock:
            if self._segment is not None \
                    and self._segment.handle is not None:
                try:
                    self._segment.handle.close()
                except OSError:
                    pass
            self._segment = None

    # -- append --------------------------------------------------------------

    def append(self, event: str, job_id: str,
               signature: Optional[str] = None,
               payload: Optional[Dict[str, Any]] = None,
               result: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None) -> bool:
        """Durably record one job transition; returns False on failure.

        A failed append (full disk, unwritable directory, injected
        fault) must not take serving down: it is counted, warned about
        once, and the caller proceeds with durability degraded.
        """
        if event not in EVENTS:
            raise ValueError("unknown ledger event %r" % event)
        record: Dict[str, Any] = {"v": LEDGER_SCHEMA, "ts": time.time(),
                                  "event": event, "job": job_id}
        if signature is not None:
            record["signature"] = signature
        if payload is not None:
            record["payload"] = payload
        if result is not None:
            record["result"] = result
        if error is not None:
            record["error"] = error
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            try:
                faults.maybe_fault("serve.ledger.append")
                segment = self._ensure_segment(len(line))
                segment.handle.write(line)
                segment.handle.flush()
                if self.fsync:
                    os.fsync(segment.handle.fileno())
                segment.size += len(line)
                self.appends += 1
                return True
            except OSError as exc:
                self.append_errors += 1
                first = not self._append_error_logged
                self._append_error_logged = True
                # a broken handle must not poison every later append
                self._segment = None
                if first:
                    logger.warning(
                        "cannot append to job ledger under %s (%s); jobs "
                        "will NOT survive a restart until the ledger "
                        "directory is writable again", self.path, exc)
                else:
                    logger.debug("ledger append failed again: %s", exc)
                return False

    # -- replay / recovery ---------------------------------------------------

    def replay(self) -> "OrderedDict[str, LedgerState]":
        """Collapse every segment into one :class:`LedgerState` per job.

        Unparseable lines are torn writes from a crashed append: counted
        and skipped (only ever the in-flight record, by construction).
        Records with an unknown schema version are counted separately.
        """
        states: "OrderedDict[str, LedgerState]" = OrderedDict()
        segments = self.segments()
        for segment_index, path in enumerate(segments):
            try:
                with open(path, encoding="utf-8", errors="replace") as fh:
                    lines = fh.readlines()
            except OSError as exc:
                logger.warning("cannot read ledger segment %s: %s",
                               path, exc)
                continue
            for line_index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.torn_records += 1
                    at_tail = (segment_index == len(segments) - 1
                               and line_index == len(lines) - 1)
                    logger.warning(
                        "skipping torn ledger record (%s:%d%s)", path,
                        line_index + 1,
                        ", crash tail" if at_tail else "")
                    continue
                if not isinstance(record, dict) \
                        or record.get("v") != LEDGER_SCHEMA \
                        or record.get("event") not in EVENTS \
                        or not record.get("job"):
                    self.skipped_records += 1
                    continue
                self._absorb(states, record)
        return states

    @staticmethod
    def _absorb(states, record: Dict[str, Any]) -> None:
        job_id = str(record["job"])
        state = states.get(job_id)
        if state is None:
            state = states[job_id] = LedgerState(job=job_id)
        event = record["event"]
        if event != "recovered":      # informational: keep the last state
            state.event = event
        if record.get("signature") is not None:
            state.signature = record["signature"]
        if record.get("payload") is not None:
            state.payload = record["payload"]
        if record.get("result") is not None:
            state.result = record["result"]
        if record.get("error") is not None:
            state.error = str(record["error"])
        if event == "accepted" and state.accepted_ts is None:
            state.accepted_ts = record.get("ts")
        if event in _TERMINAL:
            state.finished_ts = record.get("ts")

    def recover(self) -> "OrderedDict[str, LedgerState]":
        """Replay, then compact into one fresh snapshot segment.

        Finished jobs beyond the most recent ``keep_finished`` are
        dropped (and counted), bounding the ledger by job count rather
        than daemon uptime. The old segments are only deleted after the
        snapshot is durably on disk.
        """
        states = self.replay()
        old_segments = self.segments()
        finished = [s for s in states.values() if s.finished]
        dropped = 0
        if self.keep_finished and len(finished) > self.keep_finished:
            for state in finished[:-self.keep_finished]:
                del states[state.job]
                dropped += 1
        elif not self.keep_finished:
            for state in finished:
                del states[state.job]
                dropped += 1
        self.compacted_away += dropped
        self.close()
        index = self._next_index()
        snapshot = self._segment_name(index)
        tmp = snapshot + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for state in states.values():
                    record: Dict[str, Any] = {
                        "v": LEDGER_SCHEMA, "event": state.event,
                        "job": state.job,
                        "ts": state.finished_ts or state.accepted_ts
                        or time.time()}
                    if state.signature is not None:
                        record["signature"] = state.signature
                    if state.payload is not None:
                        record["payload"] = state.payload
                    if state.result is not None:
                        record["result"] = state.result
                    if state.error:
                        record["error"] = state.error
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, snapshot)
            self._fsync_dir()
            for path in old_segments:
                if path != snapshot:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
        except OSError as exc:
            # compaction is an optimization; replayed state is already
            # in memory and the old segments are still intact
            logger.warning("ledger compaction failed (%s); keeping the "
                           "existing segments", exc)
            try:
                os.remove(tmp)
            except OSError:
                pass
        return states

    def _fsync_dir(self) -> None:
        """Best-effort directory fsync so the rename itself is durable."""
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- introspection -------------------------------------------------------

    def disk_bytes(self) -> int:
        total = 0
        for path in self.segments():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "schema": LEDGER_SCHEMA,
            "segments": len(self.segments()),
            "bytes": self.disk_bytes(),
            "appends": self.appends,
            "append_errors": self.append_errors,
            "torn_records": self.torn_records,
            "skipped_records": self.skipped_records,
            "rotations": self.rotations,
            "compacted_away": self.compacted_away,
            "fsync": self.fsync,
            "max_segment_bytes": self.max_segment_bytes,
            "keep_finished": self.keep_finished,
        }
