"""Bounded FIFO job queue with single-flight request coalescing.

The daemon's admission story lives here:

* **bounded depth** — :meth:`JobQueue.submit` raises :class:`QueueFull`
  when ``depth`` jobs are already queued or running; the HTTP layer maps
  that to 429 so clients back off instead of piling work onto a box that
  cannot keep up;
* **drain** — :meth:`JobQueue.close` stops admissions (→
  :class:`QueueClosed` → 503) while dispatchers keep pulling until the
  backlog is empty, which is exactly the SIGTERM story: stop accepting,
  finish what was promised;
* **single-flight** — concurrent requests with the same
  :meth:`~repro.serve.jobs.TuneRequest.signature` are the same tuning
  problem. :meth:`signature_lock` hands dispatchers a per-signature lock
  so identical jobs serialize: the first pays the tuning, the rest
  replay it from the shared cache. N clients submitting the same source
  cost one tuning run plus N-1 cache hits, never N tuning runs.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from .. import faults
from .jobs import JobRecord


class QueueFull(Exception):
    """Admission control rejection (HTTP 429)."""


class QueueClosed(Exception):
    """The daemon is draining; no new work (HTTP 503)."""


class JobQueue:
    """FIFO of :class:`JobRecord` plus the daemon's job registry."""

    #: signature-lock table bound — pruned opportunistically; the table
    #: only grows with *distinct concurrent* signatures, but a long-lived
    #: daemon must not accumulate one lock per request ever seen
    LOCK_TABLE_CAP = 512

    def __init__(self, depth: int = 32):
        self.depth = max(1, int(depth))
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: Deque[JobRecord] = deque()
        self._running = 0
        self._closed = False
        self._jobs: Dict[str, JobRecord] = {}
        self._signature_locks: Dict[str, threading.Lock] = {}

    # -- admission -----------------------------------------------------------

    def submit(self, record: JobRecord) -> None:
        """Queue a job; raises :class:`QueueFull` / :class:`QueueClosed`."""
        faults.maybe_fault("serve.queue.submit")
        with self._lock:
            if self._closed:
                raise QueueClosed("daemon is draining")
            if len(self._pending) + self._running >= self.depth:
                raise QueueFull(
                    "queue depth %d reached (%d queued, %d running)" %
                    (self.depth, len(self._pending), self._running))
            self._jobs[record.id] = record
            self._pending.append(record)
            self._not_empty.notify()

    def register(self, record: JobRecord) -> None:
        """Add a finished job to the registry without queueing it.

        Restart recovery uses this for ledger-replayed terminal jobs so
        ``GET /v1/jobs/<id>`` keeps answering after a daemon restart.
        """
        with self._lock:
            self._jobs[record.id] = record

    def admit_recovered(self, record: JobRecord) -> None:
        """Re-admit a ledger-recovered job, bypassing the depth bound.

        The depth bound is admission control for *new* work; jobs the
        daemon already promised (they were durably ``accepted``) must
        never be dropped because the recovered backlog happens to exceed
        the configured depth.
        """
        with self._not_empty:
            if self._closed:
                raise QueueClosed("daemon is draining")
            self._jobs[record.id] = record
            self._pending.append(record)
            self._not_empty.notify()

    def next_job(self) -> Optional[JobRecord]:
        """Block for the next job; ``None`` once closed and drained."""
        with self._not_empty:
            while not self._pending:
                if self._closed:
                    return None
                # periodic wake so a dispatcher never sleeps through a
                # close() that raced its wait registration
                self._not_empty.wait(timeout=0.5)
            record = self._pending.popleft()
            self._running += 1
            return record

    def task_done(self) -> None:
        with self._lock:
            self._running = max(0, self._running - 1)

    def close(self) -> None:
        """Stop admissions and wake every blocked dispatcher."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # -- introspection -------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def counts(self) -> Dict[str, int]:
        with self._lock:
            pending, running = len(self._pending), self._running
        states: Dict[str, int] = {"queued": pending, "running": running,
                                  "done": 0, "failed": 0}
        for record in self.jobs():
            if record.state in ("done", "failed"):
                states[record.state] += 1
        return states

    def idle(self) -> bool:
        """True when nothing is queued or running."""
        with self._lock:
            return not self._pending and self._running == 0

    # -- single-flight -------------------------------------------------------

    def signature_lock(self, signature: str) -> threading.Lock:
        """The per-signature serialization lock (get-or-create)."""
        with self._lock:
            lock = self._signature_locks.get(signature)
            if lock is None:
                if len(self._signature_locks) >= self.LOCK_TABLE_CAP:
                    for key in [k for k, v in
                                self._signature_locks.items()
                                if not v.locked()]:
                        del self._signature_locks[key]
                lock = self._signature_locks[signature] = threading.Lock()
            return lock
