"""The ``repro serve`` daemon: tuning as a long-running service.

The paper's cost argument is that target-specific respecialization is
expensive but *amortizable*; a one-shot CLI never amortizes anything
because every invocation pays cold startup and owns its cache privately.
:class:`TuneServer` makes the tuning pipeline resident: a threaded
HTTP/JSON front end over an async job queue, dispatcher threads that run
each job through :class:`~repro.engine.scheduler.SweepScheduler` (warm
persistent worker pools, per-job timeout, crash isolation), and **one
shared on-disk** :class:`~repro.engine.cache.TuningCache` that every
client of the daemon — and every worker process — reads and writes, so
the Nth identical request replays the first one's decision.

API surface (all JSON):

* ``POST /v1/tune``            — submit a tuning request → job id
  (429 when the queue is full, 503 while draining, 400 on a bad body);
* ``GET /v1/jobs/<id>``        — job status incl. per-stage progress;
* ``GET /v1/jobs/<id>/result`` — the full result: composite seconds,
  cache accounting, per-stage seconds, and the TDO decision log
  (202 while the job is still queued/running);
* ``GET /v1/cache/stats``      — shared-cache hit/miss/evict/quarantine
  counters, hit rate, and disk occupancy against the configured budget;
* ``GET /v1/ledger``           — durable job-ledger occupancy and the
  restart-recovery counters;
* ``GET /v1/faults``           — the active fault-injection plan (chaos
  campaigns only; ``{"installed": false}`` in production);
* ``GET /healthz``             — liveness, queue counts, uptime.

Shutdown is graceful: SIGTERM/SIGINT stop admissions (503), let the
dispatchers finish the backlog (bounded by ``drain_grace``), shut the
scheduler worker pools down cleanly, then stop the HTTP listener.

Crash safety: every job transition is written (fsync'd) to an
append-only :class:`~repro.serve.ledger.JobLedger` under the cache
directory *before* the daemon acts on it, and replayed on startup —
finished jobs answer from the ledger, queued/in-flight jobs are
re-admitted idempotently by signature. A ``kill -9`` costs at most one
re-run of the interrupted job; see ``docs/SERVE.md``.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from .. import faults
from ..engine import EngineStats, TuningCache, TuningEngine
from ..engine.cache import default_cache_path, parse_cache_budget
from ..engine.scheduler import Job, SweepScheduler
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from .jobs import DONE, FAILED, JobRecord, RequestError, TuneRequest, \
    run_tune_job
from .ledger import JobLedger
from .queue import JobQueue, QueueClosed, QueueFull

logger = get_logger("serve")

#: job execution isolation: worker processes (timeout enforcement, crash
#: isolation) or in-daemon threads (no fork cost; timeouts unenforced)
ISOLATIONS = ("process", "thread")

#: request body bound — tuning sources are small; anything bigger is abuse
MAX_BODY_BYTES = 8 * 1024 * 1024

#: cache counter names aggregated from job results into the daemon registry
_CACHE_COUNTERS = (("hits", "engine.cache.hit"),
                   ("misses", "engine.cache.miss"),
                   ("stores", "engine.cache.store"),
                   ("evictions", "engine.cache.evict"),
                   ("dump_errors", "engine.cache.dump_errors"),
                   ("quarantined", "engine.cache.quarantined"))

_JOB_ID_RE = re.compile(r"^j(\d+)$")


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can be told on the command line."""

    host: str = "127.0.0.1"
    port: int = 8321
    workers: int = 2
    queue_depth: int = 32
    job_timeout: Optional[float] = None
    retries: int = 1
    isolation: str = "process"
    cache_dir: Optional[str] = None
    #: ``$REPRO_TUNING_CACHE_MAX`` syntax: bytes, ``k``/``m``/``g``, or
    #: ``<N>e`` entries
    cache_max: Optional[str] = None
    drain_grace: float = 30.0
    mp_context: Optional[str] = None
    #: durable job ledger (WAL + restart recovery); ``False`` restores
    #: the pre-ledger in-memory-only behavior
    ledger: bool = True


class TuneServer:
    """One daemon: HTTP front end + dispatchers + the shared cache."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config if config is not None else ServerConfig()
        if self.config.isolation not in ISOLATIONS:
            raise ValueError("isolation must be one of %s" %
                             (ISOLATIONS,))
        cache_dir = self.config.cache_dir or default_cache_path()
        if not cache_dir:
            cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
            logger.warning(
                "no cache directory configured ($REPRO_TUNING_CACHE or "
                "--cache); using throwaway %s — configure a persistent "
                "cache directory so the next daemon can find the warm "
                "state and the job ledger", cache_dir)
        self.cache_dir = cache_dir
        max_bytes, max_entries = parse_cache_budget(self.config.cache_max)
        #: the daemon's handle on the shared store (budget + occupancy);
        #: jobs build their own engine over the same directory
        self.cache = TuningCache(cache_dir, max_bytes=max_bytes,
                                 max_entries=max_entries)
        self.registry = obs_metrics.MetricsRegistry()
        self.queue = JobQueue(self.config.queue_depth)
        self.started_at = time.time()
        self.port = self.config.port
        self._draining = False
        self._job_ids = itertools.count(1)
        self._dispatchers: list = []
        self._schedulers: list = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._started = False
        self._serving = False
        self._stopped = threading.Event()
        self.recovered_jobs = 0
        self.replayed_finished = 0
        self.skipped_ledger_jobs = 0
        self.ledger: Optional[JobLedger] = None
        if self.config.ledger:
            self.ledger = JobLedger(os.path.join(cache_dir, "ledger"))
            self._recover()

    # -- restart recovery ----------------------------------------------------

    def _recover(self) -> None:
        """Replay the ledger: finished jobs become answerable records,
        incomplete jobs are re-admitted, and the job-id counter resumes
        past everything the previous daemon handed out."""
        states = self.ledger.recover()
        max_seen = 0
        for state in states.values():
            match = _JOB_ID_RE.match(state.job)
            if match:
                max_seen = max(max_seen, int(match.group(1)))
            payload = {key: value
                       for key, value in (state.payload or {}).items()
                       if key not in ("cache_dir", "cache_max_bytes",
                                      "cache_max_entries")}
            try:
                request = TuneRequest.from_payload(payload)
            except RequestError as error:
                self.skipped_ledger_jobs += 1
                logger.warning("skipping ledger job %s (unusable "
                               "payload: %s)", state.job, error)
                continue
            # the previous daemon's cache settings do not bind this one
            record = JobRecord(
                id=state.job, request=request,
                signature=state.signature or request.signature(),
                payload=dict(request.as_payload(),
                             cache_dir=self.cache_dir,
                             cache_max_bytes=self.cache.max_bytes,
                             cache_max_entries=self.cache.max_entries),
                recovered=True)
            if state.accepted_ts is not None:
                record.queued_at = state.accepted_ts
            if state.finished:
                record.state = DONE if state.event == "done" else FAILED
                record.result = state.result
                record.error = state.error
                record.finished_at = state.finished_ts
                self.queue.register(record)
                self.replayed_finished += 1
            else:
                self.queue.admit_recovered(record)
                self.ledger.append("recovered", record.id,
                                   signature=record.signature)
                self.recovered_jobs += 1
                logger.info("recovered job %s from the ledger (%s)",
                            record.id, request.describe())
        self._job_ids = itertools.count(max_seen + 1)
        if self.recovered_jobs:
            self.registry.counter("serve.recovered_jobs").inc(
                self.recovered_jobs)
        if self.replayed_finished:
            self.registry.counter("serve.replayed_finished").inc(
                self.replayed_finished)
        if self.recovered_jobs or self.replayed_finished:
            self._set_queue_gauges()
            logger.info("ledger replay: %d job(s) re-admitted, %d "
                        "finished job(s) answerable from the ledger",
                        self.recovered_jobs, self.replayed_finished)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the listener and start the dispatcher threads."""
        if self._started:
            return
        self._started = True
        for index in range(max(1, self.config.workers)):
            scheduler = SweepScheduler(
                workers=1,
                timeout=self.config.job_timeout,
                retries=self.config.retries,
                degrade=False,  # a hung job must fail, not block a thread
                isolate=self.config.isolation == "process",
                mp_context=self.config.mp_context)
            # persistent: the worker process stays warm across jobs
            scheduler.__enter__()
            self._schedulers.append(scheduler)
            thread = threading.Thread(
                target=self._dispatch_loop, args=(scheduler,),
                name="serve-dispatch-%d" % index, daemon=True)
            thread.start()
            self._dispatchers.append(thread)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self
        self.port = self._httpd.server_address[1]
        logger.info("repro serve on http://%s:%d (%s isolation, %d "
                    "worker(s), cache %s)", self.config.host, self.port,
                    self.config.isolation, len(self._dispatchers),
                    self.cache_dir)

    def serve_forever(self) -> None:
        """Run the HTTP loop in the calling thread until drained."""
        self.start()
        self._serving = True
        if self._stopped.is_set():  # drained before the loop even began
            self._httpd.server_close()
            return
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self._httpd.server_close()

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        logger.info("received signal %d; draining", signum)
        # drain() joins threads and stops the HTTP loop — neither is
        # safe inside the signal handler running on the serving thread
        threading.Thread(target=self.drain, name="serve-drain",
                         daemon=True).start()

    def drain(self, grace: Optional[float] = None) -> bool:
        """Stop admissions, finish the backlog, reap workers, stop HTTP.

        Returns True when every dispatcher exited within ``grace``
        seconds. Idempotent; safe to call from any non-serving thread.
        """
        grace = self.config.drain_grace if grace is None else grace
        self._draining = True
        self.queue.close()
        deadline = time.monotonic() + max(0.0, grace)
        clean = True
        for thread in self._dispatchers:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
            clean = clean and not thread.is_alive()
        if not clean:
            logger.warning("drain grace (%.1fs) expired with jobs still "
                           "running; scheduler pools will be terminated",
                           grace)
        for scheduler in self._schedulers:
            scheduler.shutdown()
        if self.ledger is not None:
            self.ledger.close()
        self._stopped.set()
        # shutdown() blocks until serve_forever's loop exits, so it must
        # only run when that loop is (or is about to be) running — the
        # _serving/_stopped handshake covers a drain that races startup
        if self._httpd is not None and self._serving:
            self._httpd.shutdown()
        return clean

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        return self._stopped.wait(timeout)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.config.host, self.port)

    # -- job intake ----------------------------------------------------------

    def submit_request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate + enqueue one request (the ``POST /v1/tune`` body).

        Raises :class:`RequestError` (400), :class:`QueueFull` (429), or
        :class:`QueueClosed` (503).
        """
        if self._draining:
            raise QueueClosed("daemon is draining")
        request = TuneRequest.from_payload(payload)
        signature = request.signature()
        job_payload = dict(request.as_payload(),
                           cache_dir=self.cache_dir,
                           cache_max_bytes=self.cache.max_bytes,
                           cache_max_entries=self.cache.max_entries)
        record = JobRecord(id="j%06d" % next(self._job_ids),
                           request=request, signature=signature,
                           payload=job_payload)
        # single-flight preview: is the same problem already in flight?
        coalesced = any(other.signature == signature
                        and not other.finished
                        for other in self.queue.jobs())
        # WAL-first: the job is durably "accepted" before the queue (and
        # before the client hears the id), so a crash between the two
        # re-admits it on restart instead of losing it
        if self.ledger is not None:
            self.ledger.append("accepted", record.id,
                               signature=signature, payload=job_payload)
        try:
            self.queue.submit(record)
        except QueueFull:
            self.registry.counter("serve.rejected_full").inc()
            if self.ledger is not None:  # rejected ≠ accepted: terminal
                self.ledger.append("failed", record.id,
                                   error="rejected: queue full")
            raise
        except QueueClosed:
            if self.ledger is not None:
                self.ledger.append("failed", record.id,
                                   error="rejected: daemon draining")
            raise
        self.registry.counter("serve.jobs_submitted").inc()
        self._set_queue_gauges()
        logger.info("queued %s: %s%s", record.id, request.describe(),
                    " (single-flight behind an identical job)"
                    if coalesced else "")
        return {"job": record.id, "state": record.state,
                "signature": signature, "single_flight": coalesced,
                "target": request.describe()}

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self, scheduler: SweepScheduler) -> None:
        while True:
            record = self.queue.next_job()
            if record is None:
                return
            try:
                self._execute(scheduler, record)
            except BaseException:  # never lose a dispatcher thread
                logger.exception("dispatcher crashed on job %s", record.id)
                if not record.finished:
                    record.state = FAILED
                    record.error = "internal dispatcher error"
                    record.finished_at = time.time()
                # keep the ledger truthful: what the client saw as failed
                # must not silently re-run after a restart
                if self.ledger is not None and record.state == FAILED:
                    self.ledger.append("failed", record.id,
                                       error=record.error)
            finally:
                self.queue.task_done()
                self._set_queue_gauges()

    def _execute(self, scheduler: SweepScheduler,
                 record: JobRecord) -> None:
        faults.maybe_fault("serve.dispatch")
        # single-flight: identical tuning problems serialize, so the
        # first pays the tuning and the rest replay the shared cache
        with self.queue.signature_lock(record.signature):
            record.mark_running()
            if self.ledger is not None:
                self.ledger.append("running", record.id)
            if self.config.isolation == "thread":
                engine = TuningEngine(
                    cache=TuningCache(self.cache_dir,
                                      max_bytes=self.cache.max_bytes,
                                      max_entries=self.cache.max_entries),
                    stats=EngineStats())
                record.live_stats = engine.stats
                runner = lambda payload: run_tune_job(payload,  # noqa: E731
                                                      engine=engine)
            else:
                runner = run_tune_job
            results = scheduler.run(runner,
                                    [Job(record.id, record.payload)])
        job_result = results[record.id]
        # WAL ordering: durably terminal before clients can observe it
        if self.ledger is not None:
            if job_result.ok:
                self.ledger.append("done", record.id,
                                   result=job_result.value)
            else:
                self.ledger.append("failed", record.id,
                                   error=job_result.error)
        record.finish(job_result)
        self._account(record)

    def _account(self, record: JobRecord) -> None:
        counter = self.registry.counter
        if record.timeouts:
            counter("serve.job_timeouts").inc(record.timeouts)
        if record.state == FAILED:
            counter("serve.jobs_failed").inc()
            logger.warning("job %s failed: %s", record.id, record.error)
            return
        counter("serve.jobs_completed").inc()
        result = record.result or {}
        self.registry.histogram("serve.job_seconds").observe(
            result.get("wall_seconds", 0.0))
        if result.get("cache_hit"):
            counter("serve.warm_jobs").inc()
        for result_key, counter_name in _CACHE_COUNTERS:
            amount = result.get("cache", {}).get(result_key, 0)
            if amount:
                counter(counter_name).inc(amount)
        for stage, seconds in (result.get("stages") or {}).items():
            self.registry.histogram("stage.%s" % stage).observe(seconds)
        counters = self.registry.counter_values()
        hits = counters.get("engine.cache.hit", 0)
        misses = counters.get("engine.cache.miss", 0)
        self.registry.gauge("serve.cache.hit_rate").set(
            hits / (hits + misses) if hits + misses else 0.0)
        logger.info("job %s done in %.2fs (%s)", record.id,
                    result.get("wall_seconds", 0.0),
                    "cache hit" if result.get("cache_hit")
                    else "cold tuning")

    def _set_queue_gauges(self) -> None:
        counts = self.queue.counts()
        self.registry.gauge("serve.queue_depth").set(counts["queued"])
        self.registry.gauge("serve.running_jobs").set(counts["running"])

    # -- read endpoints ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.queue.counts(),
            "workers": len(self._dispatchers),
            "isolation": self.config.isolation,
            "queue_depth": self.config.queue_depth,
            "cache_path": self.cache_dir,
            "ledger": self.ledger is not None,
        }

    def cache_stats(self) -> Dict[str, Any]:
        counters = self.registry.counter_values()
        hits = counters.get("engine.cache.hit", 0)
        misses = counters.get("engine.cache.miss", 0)
        occupancy = self.cache.stats()
        return {
            "hits": hits,
            "misses": misses,
            "stores": counters.get("engine.cache.store", 0),
            "evictions": counters.get("engine.cache.evict", 0),
            "dump_errors": counters.get("engine.cache.dump_errors", 0),
            "quarantined": counters.get("engine.cache.quarantined", 0),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "disk_entries": occupancy["disk_entries"],
            "disk_bytes": occupancy["disk_bytes"],
            "max_bytes": self.cache.max_bytes,
            "max_entries": self.cache.max_entries,
            "path": self.cache_dir,
            "jobs": {
                "submitted": counters.get("serve.jobs_submitted", 0),
                "completed": counters.get("serve.jobs_completed", 0),
                "failed": counters.get("serve.jobs_failed", 0),
                "warm": counters.get("serve.warm_jobs", 0),
                "rejected_full": counters.get("serve.rejected_full", 0),
                "timeouts": counters.get("serve.job_timeouts", 0),
                "recovered": counters.get("serve.recovered_jobs", 0),
            },
        }

    def ledger_stats(self) -> Dict[str, Any]:
        """The ``GET /v1/ledger`` payload: WAL + recovery accounting."""
        payload: Dict[str, Any] = {
            "enabled": self.ledger is not None,
            "recovered_jobs": self.recovered_jobs,
            "replayed_finished": self.replayed_finished,
            "skipped_jobs": self.skipped_ledger_jobs,
        }
        if self.ledger is not None:
            payload["ledger"] = self.ledger.stats()
        return payload

    @staticmethod
    def fault_stats() -> Dict[str, Any]:
        """The ``GET /v1/faults`` payload: the active chaos plan."""
        plan = faults.active_plan()
        if plan is None:
            return {"installed": False}
        return dict({"installed": True}, **plan.stats())


# -- HTTP plumbing -----------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the owning :class:`TuneServer`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("http %s", format % args)

    @property
    def app(self) -> TuneServer:
        return self.server.app

    def _json(self, code: int, payload: Dict[str, Any],
              headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                return self._json(200, self.app.health())
            if path == "/v1/cache/stats":
                return self._json(200, self.app.cache_stats())
            if path == "/v1/ledger":
                return self._json(200, self.app.ledger_stats())
            if path == "/v1/faults":
                return self._json(200, self.app.fault_stats())
            if path.startswith("/v1/jobs/"):
                return self._job_route(path[len("/v1/jobs/"):])
            return self._json(404, {"error": "no route %s" % path})
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self._internal_error("GET", error)

    def _internal_error(self, verb: str, error: Exception) -> None:
        logger.exception("unhandled error serving %s %s", verb,
                         self.path)
        try:
            self._json(500, {"error": "internal error: %s" % error})
        except OSError:
            pass  # response already underway or the client is gone

    def _job_route(self, rest: str) -> None:
        parts = rest.split("/")
        record = self.app.queue.get(parts[0])
        if record is None:
            return self._json(404, {"error": "unknown job %r" % parts[0]})
        if len(parts) == 1:
            return self._json(200, record.status_dict())
        if len(parts) == 2 and parts[1] == "result":
            result = record.result_dict()
            if result is not None:
                return self._json(200, result)
            status = record.status_dict()
            if status["state"] == FAILED:
                return self._json(200, status)
            return self._json(202, status)  # not finished yet: poll on
        return self._json(404, {"error": "no route under job %s"
                                % parts[0]})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/tune":
            return self._json(404, {"error": "no route %s" % path})
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return self._json(400, {"error": "bad Content-Length"})
        if length > MAX_BODY_BYTES:
            return self._json(413, {"error": "request body over %d bytes"
                                    % MAX_BODY_BYTES})
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except ValueError as error:
            return self._json(400, {"error": "invalid JSON: %s" % error})
        try:
            return self._json(200, self.app.submit_request(payload))
        except RequestError as error:
            return self._json(400, {"error": str(error)})
        except QueueFull as error:
            return self._json(429, {"error": str(error)},
                              headers={"Retry-After": "1"})
        except QueueClosed as error:
            return self._json(503, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self._internal_error("POST", error)
