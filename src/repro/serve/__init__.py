"""``repro serve``: the tuning pipeline as a long-running daemon.

The package splits along the daemon's three concerns:

* :mod:`repro.serve.jobs`   — the request schema (:class:`TuneRequest`),
  the picklable job runner (:func:`run_tune_job`), and per-job lifecycle
  records (:class:`JobRecord`);
* :mod:`repro.serve.queue`  — bounded admission, drain semantics, and
  single-flight coalescing (:class:`JobQueue`);
* :mod:`repro.serve.server` — the HTTP front end and dispatcher threads
  (:class:`TuneServer` / :class:`ServerConfig`);
* :mod:`repro.serve.client` — the stdlib client (:class:`ServeClient`).

See ``docs/SERVE.md`` for the API schema and deployment notes.
"""

from .client import ServeClient, ServeError
from .jobs import JobRecord, RequestError, TuneRequest, run_tune_job
from .queue import JobQueue, QueueClosed, QueueFull
from .server import ServerConfig, TuneServer

__all__ = [
    "JobQueue", "JobRecord", "QueueClosed", "QueueFull", "RequestError",
    "ServeClient", "ServeError", "ServerConfig", "TuneRequest",
    "TuneServer", "run_tune_job",
]
