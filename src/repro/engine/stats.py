"""Per-stage instrumentation for the tuning engine.

The engine times every compilation stage it drives (parse, cleanup,
alternative generation, filters, TDO) and counts cache traffic, so that
"where does the compile time go" is a single :meth:`EngineStats.report`
away instead of a profiler session.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: canonical stage names, in pipeline order (for report formatting)
STAGE_ORDER = ("parse", "cleanup", "alternatives", "filters", "tdo",
               "replay")


class EngineStats:
    """Wall-time per stage plus event counters, accumulated in place."""

    def __init__(self) -> None:
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    def reset(self) -> None:
        self.stage_seconds.clear()
        self.stage_calls.clear()
        self.counters.clear()

    # -- recording -----------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Charge the wall time of the enclosed block to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = \
                self.stage_seconds.get(name, 0.0) + elapsed
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """A plain-data snapshot (the :meth:`Program.stats` payload)."""
        return {
            "stage_seconds": dict(self.stage_seconds),
            "stage_calls": dict(self.stage_calls),
            "counters": dict(self.counters),
        }

    def report(self) -> str:
        """Human-readable stage/counter table for the CLI."""
        lines = ["%-16s %10s %8s" % ("stage", "seconds", "calls"),
                 "-" * 36]
        names = [s for s in STAGE_ORDER if s in self.stage_seconds]
        names += sorted(set(self.stage_seconds) - set(STAGE_ORDER))
        for name in names:
            lines.append("%-16s %10.3f %8d" %
                         (name, self.stage_seconds[name],
                          self.stage_calls.get(name, 0)))
        if self.counters:
            lines.append("")
            for name in sorted(self.counters):
                lines.append("%-28s %8d" % (name, self.counters[name]))
        return "\n".join(lines)
