"""Per-stage instrumentation for the tuning engine.

The engine times every compilation stage it drives (parse, cleanup,
alternative generation, filters, TDO) and counts cache traffic, so that
"where does the compile time go" is a single :meth:`EngineStats.report`
away instead of a profiler session.

Since the observability PR, :class:`EngineStats` is a thin facade over
:class:`repro.obs.metrics.MetricsRegistry` — stage wall times are
histograms (``stage.<name>``), event counts are counters — so the engine
and the rest of the pipeline share one metrics implementation. The
familiar ``stage_seconds`` / ``stage_calls`` / ``counters`` views are
derived from the registry on demand. Each :meth:`stage` block also opens
a tracer span (``stage:<name>``), so stage boundaries show up in Chrome
traces when a tracer is installed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..obs import tracer as obs_tracer
from ..obs.metrics import MetricsRegistry

#: canonical stage names, in pipeline order (for report formatting)
STAGE_ORDER = ("parse", "cleanup", "alternatives", "filters", "tdo",
               "replay")

#: registry namespace for stage-timing histograms
STAGE_PREFIX = "stage."


class EngineStats:
    """Wall-time per stage plus event counters, over one metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()

    def reset(self) -> None:
        self.registry.reset()

    # -- recording -----------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Charge the wall time of the enclosed block to ``name``."""
        with obs_tracer.span("stage:%s" % name, category="stage"):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.registry.histogram(STAGE_PREFIX + name) \
                    .observe(elapsed)

    def count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def get(self, name: str) -> int:
        return self.registry.counter_value(name)

    # -- derived views -------------------------------------------------------

    @property
    def stage_seconds(self) -> Dict[str, float]:
        return {name[len(STAGE_PREFIX):]: summary["total"]
                for name, summary
                in self.registry.histogram_summaries().items()
                if name.startswith(STAGE_PREFIX)}

    @property
    def stage_calls(self) -> Dict[str, int]:
        return {name[len(STAGE_PREFIX):]: int(summary["count"])
                for name, summary
                in self.registry.histogram_summaries().items()
                if name.startswith(STAGE_PREFIX)}

    @property
    def counters(self) -> Dict[str, int]:
        return self.registry.counter_values()

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """A plain-data snapshot (the :meth:`Program.stats` payload)."""
        return {
            "stage_seconds": self.stage_seconds,
            "stage_calls": self.stage_calls,
            "counters": self.counters,
        }

    def report(self) -> str:
        """Human-readable stage/counter table for the CLI."""
        stage_seconds = self.stage_seconds
        stage_calls = self.stage_calls
        counters = self.counters
        lines = ["%-16s %10s %8s" % ("stage", "seconds", "calls"),
                 "-" * 36]
        names = [s for s in STAGE_ORDER if s in stage_seconds]
        names += sorted(set(stage_seconds) - set(STAGE_ORDER))
        for name in names:
            lines.append("%-16s %10.3f %8d" %
                         (name, stage_seconds[name],
                          stage_calls.get(name, 0)))
        if counters:
            lines.append("")
            for name in sorted(counters):
                lines.append("%-28s %8d" % (name, counters[name]))
        return "\n".join(lines)
