"""Evaluation backends: sequential by default, thread-pool fan-out on demand.

Alternative timing and register estimation are independent per alternative,
so they can be mapped over a worker pool. Both backends preserve input
order, so the selected winner is identical either way — parallelism is a
throughput knob, never a behavior change.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: environment variable selecting the default worker count
WORKERS_ENV = "REPRO_TUNE_WORKERS"


class SequentialBackend:
    """The deterministic fallback: a plain in-order loop."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SequentialBackend()"


class ThreadPoolBackend:
    """Order-preserving fan-out over ``concurrent.futures`` threads."""

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError("ThreadPoolBackend needs at least 2 workers; "
                             "use SequentialBackend instead")
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:
        return "ThreadPoolBackend(workers=%d)" % self.workers


def make_backend(workers: Optional[int] = None):
    """Resolve a backend from an explicit worker count or the environment.

    ``workers`` of ``None`` consults ``$REPRO_TUNE_WORKERS``; a count of
    0 or 1 (or anything unparseable) means sequential.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return ThreadPoolBackend(workers) if workers and workers > 1 \
        else SequentialBackend()
