"""Evaluation backends: sequential by default, thread- or process-pool
fan-out on demand.

Alternative timing and register estimation are independent per alternative,
so they can be mapped over a worker pool. All backends preserve input
order, so the selected winner is identical either way — parallelism is a
throughput knob, never a behavior change.

``ThreadPoolBackend`` accepts arbitrary callables (closures over IR
included) but is GIL-bound over the pure-Python simulator.
``ProcessPoolBackend`` sidesteps the GIL but requires the function and
every item to be picklable — which the in-memory IR is not, so the
per-alternative TDO map stays on threads and CPU-bound scale-out happens
one level up, at job granularity, in :mod:`repro.engine.scheduler`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: environment variable selecting the default worker count
WORKERS_ENV = "REPRO_TUNE_WORKERS"
#: environment variable selecting the default backend kind
#: ("thread", the default, or "process")
BACKEND_ENV = "REPRO_TUNE_BACKEND"


class SequentialBackend:
    """The deterministic fallback: a plain in-order loop."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SequentialBackend()"


class ThreadPoolBackend:
    """Order-preserving fan-out over ``concurrent.futures`` threads."""

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError("ThreadPoolBackend needs at least 2 workers; "
                             "use SequentialBackend instead")
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:
        return "ThreadPoolBackend(workers=%d)" % self.workers


class ProcessPoolBackend:
    """Order-preserving fan-out over ``concurrent.futures`` processes.

    The function and items must be picklable (module-level functions,
    plain-data items). Unpicklable work raises the executor's pickling
    error — use :class:`ThreadPoolBackend` for closures over IR.
    """

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError("ProcessPoolBackend needs at least 2 workers; "
                             "use SequentialBackend instead")
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:
        return "ProcessPoolBackend(workers=%d)" % self.workers


def make_backend(workers: Optional[int] = None,
                 kind: Optional[str] = None):
    """Resolve a backend from an explicit worker count or the environment.

    ``workers`` of ``None`` consults ``$REPRO_TUNE_WORKERS``; a count of
    0 or 1 (or anything unparseable) means sequential. ``kind`` of
    ``None`` consults ``$REPRO_TUNE_BACKEND`` (``"thread"`` unless set to
    ``"process"``).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    if not workers or workers <= 1:
        return SequentialBackend()
    if kind is None:
        kind = os.environ.get(BACKEND_ENV, "").strip().lower() or "thread"
    if kind == "process":
        return ProcessPoolBackend(workers)
    return ThreadPoolBackend(workers)
