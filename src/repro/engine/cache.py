"""Content-addressed tuning cache.

A tuning decision is fully determined by the CUDA source, the target
architecture, the optimization tier, the candidate configuration set, and
the launch geometry — so :class:`TuningCache` keys memoized
:class:`~repro.autotune.tdo.TuneOutcome`s by a digest of exactly those
inputs. A hit lets :class:`~repro.pipeline.Program` replay the winning
coarsening directly, skipping alternative generation, filtering, and TDO
entirely. Failed tunings (no legal alternative) are cached too, so they
are not retried.

The cache is in-memory by default; give it a directory (or set
``$REPRO_TUNING_CACHE``) to persist entries as one JSON file per key
across processes.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..obs.log import get_logger

#: environment variable naming the on-disk cache directory
CACHE_DIR_ENV = "REPRO_TUNING_CACHE"

logger = get_logger("engine.cache")


@dataclass
class CacheEntry:
    """One memoized tuning decision.

    ``outcome`` is ``None`` when tuning failed (no legal alternative / no
    launchable candidate); ``selected_config`` is the coarsening kwargs of
    the winner, used to replay the transformation without re-generating
    alternatives.
    """

    outcome: Optional[object] = None          # TuneOutcome
    selected_config: Optional[Dict[str, object]] = None


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return str(value)


def arch_token(arch) -> str:
    """A stable digest input for an architecture model.

    Uses every dataclass field, not just the name, so a custom arch that
    shares a name with a stock one cannot alias its cache entries.
    """
    from dataclasses import asdict, is_dataclass
    payload = asdict(arch) if is_dataclass(arch) else repr(arch)
    return json.dumps(payload, sort_keys=True, default=_jsonable)


def source_hash(source: str, defines: Optional[Dict[str, object]] = None
                ) -> str:
    """Digest of the CUDA source text plus preprocessor defines."""
    text = "%s\n%r" % (source, sorted((defines or {}).items()))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def tuning_key(src_hash: str, arch, tier: str,
               configs: Sequence[Dict[str, object]],
               wrapper_name: str,
               geometry: Sequence[Tuple[int, ...]]) -> str:
    """The content address of one tuning decision.

    ``wrapper_name`` encodes the kernel, grid rank, and block shape;
    ``geometry`` is the tuple of grids the alternatives were ranked over.
    """
    payload = {
        "source": src_hash,
        "arch": arch_token(arch),
        "tier": tier,
        "configs": list(configs),
        "wrapper": wrapper_name,
        "geometry": list(geometry),
    }
    text = json.dumps(payload, sort_keys=True, default=_jsonable)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- TuneOutcome (de)serialization ------------------------------------------------


def entry_to_dict(entry: CacheEntry) -> Dict[str, object]:
    from dataclasses import asdict
    outcome = None
    if entry.outcome is not None:
        outcome = asdict(entry.outcome)
    return {"outcome": outcome, "selected_config": entry.selected_config}


def entry_from_dict(data: Dict[str, object]) -> CacheEntry:
    from ..autotune.filters import FilterReport
    from ..autotune.tdo import Candidate, TuneOutcome
    raw = data.get("outcome")
    outcome = None
    if raw is not None:
        filters = None
        if raw.get("filters") is not None:
            filters = FilterReport(**raw["filters"])
        outcome = TuneOutcome(
            selected_desc=raw["selected_desc"],
            selected_time=raw["selected_time"],
            candidates=[Candidate(**c) for c in raw.get("candidates", [])],
            filters=filters,
            selected_index=raw.get("selected_index", -1),
            selected_config=raw.get("selected_config"))
    return CacheEntry(outcome, data.get("selected_config"))


class TuningCache:
    """In-memory (and optionally on-disk) map of tuning keys → entries."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._memory: Dict[str, CacheEntry] = {}
        if path:
            os.makedirs(path, exist_ok=True)

    # -- access ----------------------------------------------------------------

    def lookup(self, key: str) -> Tuple[bool, Optional[CacheEntry]]:
        """Returns ``(hit, entry)``; the entry is a private copy."""
        entry = self._memory.get(key)
        if entry is not None:
            logger.debug("memory hit for %s", key)
            return True, copy.deepcopy(entry)
        if self.path:
            entry = self._load(key)
            if entry is not None:
                logger.debug("disk hit for %s", key)
                self._memory[key] = entry
                return True, copy.deepcopy(entry)
        logger.debug("miss for %s", key)
        return False, None

    def store(self, key: str, entry: CacheEntry) -> None:
        logger.debug("store %s (winner: %s)", key,
                     entry.outcome.selected_desc
                     if entry.outcome is not None else "<failed tuning>")
        self._memory[key] = copy.deepcopy(entry)
        if self.path:
            self._dump(key, entry)

    def clear(self) -> None:
        self._memory.clear()
        if self.path and os.path.isdir(self.path):
            for name in os.listdir(self.path):
                if name.endswith(".json") or name.endswith(".tmp"):
                    os.remove(os.path.join(self.path, name))

    def __len__(self) -> int:
        return len(self._memory)

    def disk_entries(self) -> int:
        if not self.path or not os.path.isdir(self.path):
            return 0
        return sum(1 for name in os.listdir(self.path)
                   if name.endswith(".json"))

    # -- persistence -------------------------------------------------------------

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key + ".json")

    def _load(self, key: str) -> Optional[CacheEntry]:
        path = self._file(key)
        try:
            with open(path) as handle:
                return entry_from_dict(json.load(handle))
        except OSError:
            return None  # not on disk (or unreadable): a plain miss
        except (ValueError, KeyError, TypeError):
            # corrupt or stale-schema entry: delete it so the key can be
            # re-tuned and re-stored instead of missing on every lookup
            logger.warning("deleting corrupt cache entry %s", path)
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _dump(self, key: str, entry: CacheEntry) -> None:
        # the temp file must be unique PER WRITER: concurrent processes
        # storing the same key with a shared name would interleave writes
        # and os.replace a corrupt file into the cache
        target = self._file(key)
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.path,
                                       prefix=key[:16] + ".",
                                       suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(entry_to_dict(entry), handle)
            os.replace(tmp, target)
        except OSError:
            pass  # disk persistence is best-effort
        finally:
            if tmp is not None and os.path.exists(tmp):
                try:
                    os.remove(tmp)
                except OSError:
                    pass


def default_cache_path() -> Optional[str]:
    return os.environ.get(CACHE_DIR_ENV) or None
