"""Content-addressed tuning cache.

A tuning decision is fully determined by the CUDA source, the target
architecture, the optimization tier, the candidate configuration set, and
the launch geometry — so :class:`TuningCache` keys memoized
:class:`~repro.autotune.tdo.TuneOutcome`s by a digest of exactly those
inputs. A hit lets :class:`~repro.pipeline.Program` replay the winning
coarsening directly, skipping alternative generation, filtering, and TDO
entirely. Failed tunings (no legal alternative) are cached too, so they
are not retried.

The cache is in-memory by default; give it a directory (or set
``$REPRO_TUNING_CACHE``) to persist entries as one JSON file per key
across processes.

Multi-tenant behavior (the ``repro serve`` daemon shares one on-disk
cache across every client):

* every lookup/store is **counted** — instance totals via
  :meth:`TuningCache.stats` plus ``engine.cache.{hit,miss,evict,store,
  dump_errors,quarantined}`` counters on the installed
  :mod:`repro.obs.metrics` registry;
* the on-disk store is **bounded**: an LRU byte budget (and optional
  entry budget) is enforced at :meth:`store` time, configured by
  ``$REPRO_TUNING_CACHE_MAX`` (plain bytes, ``k``/``m``/``g`` suffixes,
  or ``<N>e`` for an entry budget). Eviction orders by file mtime —
  disk hits touch the file, so the order is LRU, and concurrent writers
  stay safe because every writer uses a private ``mkstemp`` temp and
  racing removals tolerate losing;
* a failing dump (full disk, read-only cache dir) is **loud**: warned
  once per cache instance and counted, instead of silently degrading to
  0% warm replay;
* a bad entry (torn write, corrupt JSON, stale :data:`ENTRY_SCHEMA`) is
  **quarantined**, never deleted: renamed to ``<key>.json.quarantine``
  and counted, so the key re-tunes cleanly while the evidence survives
  for postmortems.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

#: on-disk entry schema version; entries written by an older (or newer)
#: schema are quarantined and re-tuned rather than misread
ENTRY_SCHEMA = 2

#: environment variable naming the on-disk cache directory
CACHE_DIR_ENV = "REPRO_TUNING_CACHE"

#: environment variable bounding the on-disk cache (LRU-evicted at store
#: time): plain bytes, a ``k``/``m``/``g``-suffixed byte count, or
#: ``<N>e`` for a maximum entry count
CACHE_MAX_ENV = "REPRO_TUNING_CACHE_MAX"

logger = get_logger("engine.cache")

_SUFFIX_BYTES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def parse_cache_budget(text: Optional[str]
                       ) -> Tuple[Optional[int], Optional[int]]:
    """Parse a ``$REPRO_TUNING_CACHE_MAX`` value.

    Returns ``(max_bytes, max_entries)``; both ``None`` for an empty or
    malformed value (malformed values are warned about, not fatal —
    an operator typo must not take the cache down).
    """
    raw = (text or "").strip().lower()
    if not raw:
        return None, None
    try:
        if raw.endswith("e"):
            return None, max(0, int(raw[:-1]))
        if raw[-1] in _SUFFIX_BYTES:
            return max(0, int(float(raw[:-1]) * _SUFFIX_BYTES[raw[-1]])), \
                None
        return max(0, int(raw)), None
    except ValueError:
        logger.warning("ignoring malformed %s value %r", CACHE_MAX_ENV,
                       text)
        return None, None


@dataclass
class CacheEntry:
    """One memoized tuning decision.

    ``outcome`` is ``None`` when tuning failed (no legal alternative / no
    launchable candidate); ``selected_config`` is the coarsening kwargs of
    the winner, used to replay the transformation without re-generating
    alternatives.
    """

    outcome: Optional[object] = None          # TuneOutcome
    selected_config: Optional[Dict[str, object]] = None


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return str(value)


def arch_token(arch) -> str:
    """A stable digest input for an architecture model.

    Uses every dataclass field, not just the name, so a custom arch that
    shares a name with a stock one cannot alias its cache entries.
    """
    from dataclasses import asdict, is_dataclass
    payload = asdict(arch) if is_dataclass(arch) else repr(arch)
    return json.dumps(payload, sort_keys=True, default=_jsonable)


def source_hash(source: str, defines: Optional[Dict[str, object]] = None
                ) -> str:
    """Digest of the CUDA source text plus preprocessor defines."""
    text = "%s\n%r" % (source, sorted((defines or {}).items()))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def tuning_key(src_hash: str, arch, tier: str,
               configs: Sequence[Dict[str, object]],
               wrapper_name: str,
               geometry: Sequence[Tuple[int, ...]]) -> str:
    """The content address of one tuning decision.

    ``wrapper_name`` encodes the kernel, grid rank, and block shape;
    ``geometry`` is the tuple of grids the alternatives were ranked over.
    """
    payload = {
        "source": src_hash,
        "arch": arch_token(arch),
        "tier": tier,
        "configs": list(configs),
        "wrapper": wrapper_name,
        "geometry": list(geometry),
    }
    text = json.dumps(payload, sort_keys=True, default=_jsonable)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- TuneOutcome (de)serialization ------------------------------------------------


def entry_to_dict(entry: CacheEntry) -> Dict[str, object]:
    from dataclasses import asdict
    outcome = None
    if entry.outcome is not None:
        outcome = asdict(entry.outcome)
    return {"schema": ENTRY_SCHEMA, "outcome": outcome,
            "selected_config": entry.selected_config}


def entry_from_dict(data: Dict[str, object]) -> CacheEntry:
    from ..autotune.filters import FilterReport
    from ..autotune.tdo import Candidate, TuneOutcome
    raw = data.get("outcome")
    outcome = None
    if raw is not None:
        filters = None
        if raw.get("filters") is not None:
            filters = FilterReport(**raw["filters"])
        outcome = TuneOutcome(
            selected_desc=raw["selected_desc"],
            selected_time=raw["selected_time"],
            candidates=[Candidate(**c) for c in raw.get("candidates", [])],
            filters=filters,
            selected_index=raw.get("selected_index", -1),
            selected_config=raw.get("selected_config"))
    return CacheEntry(outcome, data.get("selected_config"))


class TuningCache:
    """In-memory (and optionally on-disk) map of tuning keys → entries.

    ``max_bytes`` / ``max_entries`` bound the **on-disk** store with LRU
    eviction at :meth:`store` time (``max_entries`` also bounds the
    in-memory map). Both default to ``$REPRO_TUNING_CACHE_MAX``.
    """

    def __init__(self, path: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None):
        self.path = path
        if max_bytes is None and max_entries is None:
            max_bytes, max_entries = parse_cache_budget(
                os.environ.get(CACHE_MAX_ENV))
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._memory: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.dump_errors = 0
        self.quarantined = 0
        self._dump_error_logged = False
        if path:
            os.makedirs(path, exist_ok=True)

    # -- access ----------------------------------------------------------------

    def lookup(self, key: str) -> Tuple[bool, Optional[CacheEntry]]:
        """Returns ``(hit, entry)``; the entry is a private copy."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self._count_hit()
                logger.debug("memory hit for %s", key)
                return True, copy.deepcopy(entry)
        if self.path:
            entry = self._load(key)
            if entry is not None:
                self._touch(key)
                with self._lock:
                    self._memory[key] = entry
                    self._memory.move_to_end(key)
                    self._evict_memory(keep=key)
                    self._count_hit()
                logger.debug("disk hit for %s", key)
                return True, copy.deepcopy(entry)
        with self._lock:
            self.misses += 1
        obs_metrics.inc("engine.cache.miss")
        logger.debug("miss for %s", key)
        return False, None

    def store(self, key: str, entry: CacheEntry) -> None:
        logger.debug("store %s (winner: %s)", key,
                     entry.outcome.selected_desc
                     if entry.outcome is not None else "<failed tuning>")
        with self._lock:
            self._memory[key] = copy.deepcopy(entry)
            self._memory.move_to_end(key)
            self.stores += 1
            self._evict_memory(keep=key)
        obs_metrics.inc("engine.cache.store")
        if self.path:
            self._dump(key, entry)
            self._evict_disk(keep=key)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
        if self.path and os.path.isdir(self.path):
            for name in os.listdir(self.path):
                if name.endswith(".json") or name.endswith(".tmp") \
                        or name.endswith(".quarantine"):
                    try:
                        os.remove(os.path.join(self.path, name))
                    except OSError:
                        pass  # a concurrent clear/evict got there first

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def disk_entries(self) -> int:
        if not self.path or not os.path.isdir(self.path):
            return 0
        return sum(1 for name in os.listdir(self.path)
                   if name.endswith(".json"))

    def disk_bytes(self) -> int:
        """Total size of the on-disk entries, in bytes."""
        return sum(size for _, _, size in self._disk_listing())

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus occupancy, for ``/v1/cache/stats``."""
        with self._lock:
            hits, misses = self.hits, self.misses
            payload: Dict[str, object] = {
                "hits": hits,
                "misses": misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "dump_errors": self.dump_errors,
                "quarantined": self.quarantined,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "entries": len(self._memory),
            }
        payload["disk_entries"] = self.disk_entries()
        payload["disk_bytes"] = self.disk_bytes()
        payload["max_bytes"] = self.max_bytes
        payload["max_entries"] = self.max_entries
        payload["path"] = self.path
        return payload

    def _count_hit(self) -> None:
        # callers hold self._lock
        self.hits += 1
        obs_metrics.inc("engine.cache.hit")

    # -- eviction ---------------------------------------------------------------

    def _evict_memory(self, keep: str) -> None:
        # callers hold self._lock; only the entry budget applies in memory
        # (byte accounting is meaningful for the persisted JSON files).
        # ``keep`` was just move_to_end'd, so the LRU victim is never the
        # entry being stored while the budget is >= 1.
        if self.max_entries is None:
            return
        while len(self._memory) > max(1, self.max_entries):
            self._memory.popitem(last=False)
            if not self.path:
                # memory-only cache: this IS data loss, count it; with a
                # disk store the persisted entry survives and disk
                # eviction does the counting
                self.evictions += 1
                obs_metrics.inc("engine.cache.evict")

    def _disk_listing(self) -> List[Tuple[float, str, int]]:
        """``(mtime, path, size)`` per on-disk entry, oldest first."""
        if not self.path or not os.path.isdir(self.path):
            return []
        listing = []
        for name in os.listdir(self.path):
            if not name.endswith(".json"):
                continue
            full = os.path.join(self.path, name)
            try:
                status = os.stat(full)
            except OSError:
                continue  # concurrently evicted
            listing.append((status.st_mtime, full, status.st_size))
        listing.sort()
        return listing

    def _evict_disk(self, keep: str) -> None:
        """Enforce the LRU byte/entry budget over the persisted entries.

        Orders by mtime (disk hits :meth:`_touch` their file, so this is
        LRU, not FIFO) and is stable under concurrent writers: each
        eviction is one ``os.remove`` that tolerates already-gone files,
        and the entry just stored is never the victim.
        """
        if self.max_bytes is None and self.max_entries is None:
            return
        keep_path = self._file(keep)
        listing = self._disk_listing()
        total = sum(size for _, _, size in listing)
        count = len(listing)
        for mtime, full, size in listing:
            over_bytes = self.max_bytes is not None and \
                total > self.max_bytes
            over_entries = self.max_entries is not None and \
                count > self.max_entries
            if not over_bytes and not over_entries:
                return
            if full == keep_path:
                continue
            try:
                os.remove(full)
            except OSError:
                pass  # a concurrent writer evicted it; budget math below
                # still converges because the loop re-checks per victim
            else:
                logger.debug("evicted %s (%d bytes)", full, size)
                with self._lock:
                    self.evictions += 1
                obs_metrics.inc("engine.cache.evict")
            total -= size
            count -= 1

    # -- persistence -------------------------------------------------------------

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key + ".json") if self.path \
            else key + ".json"

    def _touch(self, key: str) -> None:
        """Refresh an entry's mtime so disk eviction stays LRU."""
        try:
            os.utime(self._file(key), None)
        except OSError:
            pass  # entry evicted between read and touch

    def _quarantine(self, path: str, reason: str) -> None:
        """Rename a bad entry aside instead of deleting the evidence.

        The key misses (and re-tunes) exactly as if the entry were gone,
        but the bytes survive as ``<entry>.quarantine`` for postmortems
        — a corrupt entry is a bug report about some writer, and deleting
        it destroys the only copy.
        """
        try:
            os.replace(path, path + ".quarantine")
        except OSError:
            return  # concurrently evicted or already quarantined
        with self._lock:
            self.quarantined += 1
        obs_metrics.inc("engine.cache.quarantined")
        logger.warning("quarantined cache entry %s (%s); the key will "
                       "be re-tuned", path, reason)

    def _load(self, key: str) -> Optional[CacheEntry]:
        path = self._file(key)
        try:
            spec = faults.maybe_fault("engine.cache.load")
            if spec is not None and spec.kind == "truncate":
                _truncate_file(path)  # simulate reading a torn write
            with open(path) as handle:
                data = json.load(handle)
            schema = data.get("schema", 1)
            if schema != ENTRY_SCHEMA:
                self._quarantine(path, "stale schema %r" % schema)
                return None
            return entry_from_dict(data)
        except OSError:
            return None  # not on disk (or unreadable): a plain miss
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "corrupt entry")
            return None

    def _dump(self, key: str, entry: CacheEntry) -> None:
        # the temp file must be unique PER WRITER: concurrent processes
        # storing the same key with a shared name would interleave writes
        # and os.replace a corrupt file into the cache
        target = self._file(key)
        tmp = None
        try:
            spec = faults.maybe_fault("engine.cache.dump")
            fd, tmp = tempfile.mkstemp(dir=self.path,
                                       prefix=key[:16] + ".",
                                       suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(entry_to_dict(entry), handle)
            os.replace(tmp, target)
            if spec is not None and spec.kind == "truncate":
                _truncate_file(target)  # publish a torn write
        except OSError as error:
            # a full disk or read-only cache dir silently degrades every
            # future run to 0% warm replay — say so once, count always
            with self._lock:
                self.dump_errors += 1
                first = not self._dump_error_logged
                self._dump_error_logged = True
            obs_metrics.inc("engine.cache.dump_errors")
            if first:
                logger.warning(
                    "cannot persist tuning cache entry under %s (%s); "
                    "warm replay across processes is disabled until the "
                    "cache directory is writable again", self.path, error)
            else:
                logger.debug("cache dump failed again: %s", error)
        finally:
            if tmp is not None and os.path.exists(tmp):
                try:
                    os.remove(tmp)
                except OSError:
                    pass


def _truncate_file(path: str) -> None:
    """Cut a file in half in place: the injected torn-write shape."""
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    except OSError:
        pass


def default_cache_path() -> Optional[str]:
    return os.environ.get(CACHE_DIR_ENV) or None
