"""The tuning engine: cached, parallel, instrumented autotuning.

Ties together the three pieces the hot compilation path needs:

* :class:`~repro.engine.cache.TuningCache` — content-addressed memoization
  of tuning decisions keyed by (source hash, arch, tier, configs, launch
  geometry), in memory and optionally on disk;
* the evaluation backends of :mod:`~repro.engine.parallel` — fan
  alternative timing / register estimation out over
  ``concurrent.futures`` workers, with a deterministic sequential
  fallback;
* :class:`~repro.engine.stats.EngineStats` — per-stage wall time and
  cache-hit counters, surfaced through :meth:`Program.stats` and the CLI.

Every :class:`~repro.pipeline.Program` uses the process-wide default
engine unless given its own, so repeated compilations of the same
benchmark source share one cache.
"""

from __future__ import annotations

import os
from typing import Optional

from .cache import (CacheEntry, TuningCache, default_cache_path,
                    source_hash, tuning_key)
from .parallel import (BACKEND_ENV, ProcessPoolBackend, SequentialBackend,
                       ThreadPoolBackend, make_backend, WORKERS_ENV)
from .scheduler import (Job, JobResult, SWEEP_WORKERS_ENV, SweepScheduler,
                        sweep_workers)
from .stats import EngineStats

__all__ = [
    "BACKEND_ENV", "CacheEntry", "EngineStats", "Job", "JobResult",
    "ProcessPoolBackend", "SWEEP_WORKERS_ENV", "SequentialBackend",
    "SweepScheduler", "ThreadPoolBackend", "TuningCache", "TuningEngine",
    "VALIDATE_ENV", "default_cache_path", "default_engine", "make_backend",
    "set_default_engine", "source_hash", "sweep_workers", "tuning_key",
    "WORKERS_ENV",
]

#: set to a truthy value ("1", "true", "yes", "on") to turn the
#: differential validation gate on for every tuning run
VALIDATE_ENV = "REPRO_VALIDATE"


def _validate_from_env() -> bool:
    return os.environ.get(VALIDATE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


class TuningEngine:
    """One cache + one evaluation backend + one stats accumulator.

    ``validate`` turns on the differential equivalence gate in
    :func:`~repro.autotune.tdo.tune_wrapper`: every surviving alternative
    is interpreted against the uncoarsened baseline and diverging ones are
    eliminated before timing. Defaults to ``$REPRO_VALIDATE``.
    """

    def __init__(self, cache: Optional[TuningCache] = None,
                 workers: Optional[int] = None,
                 stats: Optional[EngineStats] = None,
                 validate: Optional[bool] = None):
        self.cache = cache if cache is not None \
            else TuningCache(default_cache_path())
        self.backend = make_backend(workers)
        self.stats = stats if stats is not None else EngineStats()
        self.validate = _validate_from_env() if validate is None \
            else bool(validate)

    def __repr__(self) -> str:
        return "TuningEngine(cache=%d entries, backend=%r%s)" % (
            len(self.cache), self.backend,
            ", validate" if self.validate else "")


_default_engine: Optional[TuningEngine] = None


def default_engine() -> TuningEngine:
    """The process-wide engine shared by all Programs by default."""
    global _default_engine
    if _default_engine is None:
        _default_engine = TuningEngine()
    return _default_engine


def set_default_engine(engine: Optional[TuningEngine]) -> None:
    """Replace (or with ``None``, reset) the process-wide default engine."""
    global _default_engine
    _default_engine = engine
