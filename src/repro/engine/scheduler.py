"""Crash-isolated process scheduling for embarrassingly-parallel sweeps.

The paper's evaluation (§VII) is a large independent job matrix —
benchmark × architecture × tier — over a pure-Python simulator, so
thread-level fan-out is GIL-bound and process-level fan-out is the only
way to use more than one core. :class:`SweepScheduler` runs picklable
jobs over a pool of long-lived worker *processes* with the failure
semantics a long sweep needs:

* **per-job timeout** — an overdue worker is ``terminate()``-d and
  replaced; the job is retried or degraded, never silently hung;
* **bounded retry with backoff** — a failed attempt (exception, crash,
  timeout) re-queues the job up to ``retries`` times, waiting
  ``backoff * 2**attempt`` seconds between attempts;
* **crash isolation** — a worker that dies (OOM kill, segfault,
  ``os._exit``) takes down only its current job; the scheduler spawns a
  replacement worker and the sweep continues;
* **degrade-to-in-process** — when a job exhausts its retries, it is run
  sequentially inside the scheduler's own process as a last resort
  (``degrade=False`` marks it failed instead). A sweep therefore never
  aborts because of one bad job.

Jobs are ``(key, payload-dict)`` pairs and the runner is a module-level
function so both pickle under any multiprocessing start method. Results
come back keyed and in input order, which is what lets the caller merge
them deterministically (see :mod:`repro.benchsuite.sweeps`).

Per-job wall time, retries, timeouts, and degradations are recorded
through :mod:`repro.obs.metrics` (``sweep.*`` instruments) when a
registry is installed, and always tallied on the returned
:class:`JobResult` objects.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import faults
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

logger = get_logger("engine.scheduler")

#: schedulers with live worker pools, shut down as a last resort at
#: interpreter exit so a crashed caller (or a test that never reached its
#: cleanup) cannot leak worker processes
_live_pools: "weakref.WeakSet[SweepScheduler]" = weakref.WeakSet()


def _shutdown_live_pools() -> None:
    for scheduler in list(_live_pools):
        try:
            scheduler.shutdown()
        except Exception:  # interpreter is exiting; nothing to do about it
            pass


atexit.register(_shutdown_live_pools)

#: environment variable selecting the default sweep worker count
SWEEP_WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: supervisor poll interval in seconds
_TICK = 0.05
#: grace period for clean worker shutdown before terminate()
_SHUTDOWN_GRACE = 1.0


def sweep_workers(workers: Optional[int] = None) -> int:
    """Resolve a sweep worker count: explicit > env > cpu count."""
    if workers is not None:
        return max(1, int(workers))
    raw = os.environ.get(SWEEP_WORKERS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return os.cpu_count() or 1


@dataclass(frozen=True)
class Job:
    """One independent, picklable unit of sweep work."""

    key: str
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JobResult:
    """Terminal state of one job after scheduling."""

    key: str
    status: str = "ok"            # "ok" | "failed"
    value: Any = None
    seconds: float = 0.0          # wall time of the successful attempt
    attempts: int = 0             # total attempts (including the last)
    retries: int = 0              # re-queues after a failed attempt
    timeouts: int = 0             # attempts killed by the deadline
    degraded: bool = False        # final value came from in-process run
    error: str = ""               # last failure reason

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _JobState:
    __slots__ = ("job", "attempts", "retries", "timeouts", "retry_at",
                 "errors")

    def __init__(self, job: Job):
        self.job = job
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0
        self.retry_at = 0.0
        self.errors: List[str] = []


def _worker_main(tasks, results) -> None:
    """Worker loop: one job at a time from a private queue; None stops."""
    faults.mark_worker_process()  # ``die`` faults may kill this process
    while True:
        item = tasks.get()
        if item is None:
            return
        ticket, runner, payload = item
        start = time.perf_counter()
        try:
            faults.maybe_fault("scheduler.worker")
            value = runner(payload)
            results.put((ticket, True, value,
                         time.perf_counter() - start, ""))
        except BaseException as error:  # report ANY failure; stay alive
            results.put((ticket, False, None,
                         time.perf_counter() - start,
                         "%s: %s" % (type(error).__name__, error)))


class _Worker:
    """One process plus its private task queue and current assignment."""

    def __init__(self, context, results):
        self.tasks = context.SimpleQueue()
        self.process = context.Process(
            target=_worker_main, args=(self.tasks, results), daemon=True)
        self.process.start()
        #: (ticket, _JobState, started_monotonic) or None when idle
        self.current = None

    def assign(self, ticket: int, runner, state: _JobState) -> None:
        self.current = (ticket, state, time.monotonic())
        self.tasks.put((ticket, runner, state.job.payload))

    def stop(self) -> None:
        try:
            self.tasks.put(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=_SHUTDOWN_GRACE)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=_SHUTDOWN_GRACE)

    def kill(self) -> None:
        self.process.terminate()
        self.process.join(timeout=_SHUTDOWN_GRACE)


class SweepScheduler:
    """Run picklable jobs over worker processes with bounded failure.

    ``timeout`` is the per-attempt deadline in seconds (``None`` means
    unbounded); ``retries`` is how many times a failed job is re-queued
    before it is degraded (run in-process) or marked failed.
    ``mp_context`` names a multiprocessing start method (``"fork"``,
    ``"spawn"``); ``None`` uses the platform default. ``isolate=True``
    forces the worker-process path even for one worker or one job —
    the ``repro serve`` daemon uses it so every job gets timeout
    enforcement and crash isolation.

    The scheduler is a **context manager**. Outside a ``with`` block each
    :meth:`run` still cleans up its own workers, but entering the block
    makes the pool *persistent*: consecutive :meth:`run` calls reuse the
    same warm worker processes and :meth:`shutdown` (called on exit)
    reaps them. However the scheduler is used, live pools are registered
    with an ``atexit`` guard, so an exception between pool spawn and
    shutdown — or a caller that simply forgets — cannot orphan worker
    processes past interpreter exit.
    """

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 backoff: float = 0.5,
                 degrade: bool = True,
                 mp_context: Optional[str] = None,
                 isolate: bool = False):
        self.workers = sweep_workers(workers)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.degrade = bool(degrade)
        self.isolate = bool(isolate)
        self._context = multiprocessing.get_context(mp_context)
        self._pool: List[_Worker] = []
        self._results_queue = None
        self._persistent = False
        # tickets stay unique across runs: a stale result from a previous
        # run's timed-out attempt must never alias a live ticket when the
        # pool (and its results queue) persists
        self._tickets = itertools.count()

    def __repr__(self) -> str:
        return ("SweepScheduler(workers=%d, timeout=%r, retries=%d, "
                "degrade=%r)" % (self.workers, self.timeout, self.retries,
                                 self.degrade))

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SweepScheduler":
        self._persistent = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._persistent = False
        self.shutdown()

    def shutdown(self) -> None:
        """Stop every pooled worker process (idempotent)."""
        pool, self._pool = self._pool, []
        for worker in pool:
            worker.stop()
        self._results_queue = None
        _live_pools.discard(self)

    @property
    def pool_size(self) -> int:
        """Live worker processes currently pooled."""
        return len(self._pool)

    def _ensure_pool(self, size: int):
        """Grow the pool to ``size`` workers, replacing any dead ones."""
        if self._results_queue is None:
            self._results_queue = self._context.Queue()
        for index, worker in enumerate(self._pool):
            if not worker.process.is_alive():
                worker.kill()
                self._pool[index] = _Worker(self._context,
                                            self._results_queue)
        while len(self._pool) < size:
            self._pool.append(_Worker(self._context, self._results_queue))
        _live_pools.add(self)
        return self._results_queue

    # -- public API ---------------------------------------------------------

    def run(self, runner: Callable[[Dict[str, Any]], Any],
            jobs: Sequence[Job]) -> Dict[str, JobResult]:
        """Run every job; returns ``{key: JobResult}`` in input order.

        Never raises for a job failure: a job that fails every attempt
        (and, when enabled, the in-process degrade) comes back with
        ``status="failed"`` and its last error.
        """
        jobs = list(jobs)
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            raise ValueError("sweep job keys must be unique")
        results: Dict[str, JobResult] = {}
        if not jobs:
            return results
        if not self.isolate and (self.workers <= 1 or len(jobs) == 1):
            done = self._run_sequential(runner, jobs)
        else:
            done = self._run_pool(runner, jobs)
        # deterministic output order: the input job order
        for key in keys:
            results[key] = done[key]
        return results

    # -- sequential fallback ------------------------------------------------

    def _run_sequential(self, runner, jobs) -> Dict[str, JobResult]:
        """In-process execution (no retries; the deadline still holds).

        When ``timeout`` is set, each attempt runs in a helper thread
        that is **abandoned** on deadline — Python cannot kill a thread,
        but the job is marked failed (counted in ``sweep.timeouts``) and
        the sweep moves on instead of hanging. The ``repro serve``
        ``--isolation thread`` mode relies on this for its per-job
        deadline.
        """
        done = {}
        for job in jobs:
            done[job.key] = self._run_inline(runner, job)
        return done

    def _run_inline(self, runner, job: Job) -> JobResult:
        start = time.perf_counter()
        if self.timeout is None:
            try:
                faults.maybe_fault("scheduler.worker")
                value = runner(job.payload)
                result = JobResult(job.key, "ok", value,
                                   time.perf_counter() - start,
                                   attempts=1)
            except Exception as error:
                result = JobResult(
                    job.key, "failed", None,
                    time.perf_counter() - start, attempts=1,
                    error="%s: %s" % (type(error).__name__, error))
            self._record(result)
            return result
        box: Dict[str, Any] = {}

        def _attempt() -> None:
            try:
                faults.maybe_fault("scheduler.worker")
                box["value"] = runner(job.payload)
            except BaseException as error:  # report into the box
                box["error"] = "%s: %s" % (type(error).__name__, error)

        thread = threading.Thread(target=_attempt, daemon=True,
                                  name="sweep-inline-%s" % job.key)
        thread.start()
        thread.join(self.timeout)
        seconds = time.perf_counter() - start
        if thread.is_alive():
            obs_metrics.inc("sweep.timeouts")
            logger.warning("job %s timeout after %.1fs; abandoning the "
                           "in-process thread", job.key, seconds)
            result = JobResult(
                job.key, "failed", None, seconds, attempts=1, timeouts=1,
                error="timeout after %.1fs (in-process thread abandoned)"
                % self.timeout)
        elif "error" in box:
            result = JobResult(job.key, "failed", None, seconds,
                               attempts=1, error=box["error"])
        else:
            result = JobResult(job.key, "ok", box.get("value"), seconds,
                               attempts=1)
        self._record(result)
        return result

    # -- process pool -------------------------------------------------------

    def _run_pool(self, runner, jobs) -> Dict[str, JobResult]:
        pending = deque(_JobState(job) for job in jobs)
        waiting: List[_JobState] = []     # backoff-delayed retries
        tickets: Dict[int, _JobState] = {}
        counter = self._tickets
        done: Dict[str, JobResult] = {}
        pool_size = max(1, min(self.workers, len(jobs)))
        try:
            results_queue = self._ensure_pool(pool_size)
            pool = self._pool   # _police replaces members in place
            while len(done) < len(jobs):
                now = time.monotonic()
                # promote retries whose backoff has elapsed
                ready = [s for s in waiting if s.retry_at <= now]
                for state in ready:
                    waiting.remove(state)
                    pending.append(state)
                # hand work to idle workers
                for worker in pool:
                    if worker.current is None and pending:
                        state = pending.popleft()
                        state.attempts += 1
                        ticket = next(counter)
                        tickets[ticket] = state
                        worker.assign(ticket, runner, state)
                # reap results (block briefly, then drain)
                self._reap(results_queue, pool, tickets, done, waiting,
                           runner)
                # enforce deadlines and detect dead workers
                self._police(results_queue, pool, tickets, done, waiting,
                             runner)
        finally:
            # a persistent (context-managed) pool stays warm for the next
            # run; otherwise reap the workers right here — and either
            # way the atexit guard backstops a crashed caller
            if not self._persistent:
                self.shutdown()
        return done

    def _reap(self, results_queue, pool, tickets, done, waiting,
              runner) -> None:
        first = True
        while True:
            try:
                # block briefly on the first read, then drain what's there
                item = results_queue.get(timeout=_TICK) if first \
                    else results_queue.get_nowait()
            except (queue_module.Empty, OSError, EOFError):
                return
            first = False
            ticket, ok, value, seconds, error = item
            state = tickets.pop(ticket, None)
            if state is None:
                continue  # stale result from a timed-out attempt
            for worker in pool:
                if worker.current is not None and \
                        worker.current[0] == ticket:
                    worker.current = None
                    break
            if ok:
                result = JobResult(
                    state.job.key, "ok", value, seconds,
                    attempts=state.attempts, retries=state.retries,
                    timeouts=state.timeouts)
                self._record(result)
                done[state.job.key] = result
            else:
                self._handle_failure(state, error, done, waiting, runner)

    def _police(self, results_queue, pool, tickets, done, waiting,
                runner) -> None:
        now = time.monotonic()
        for index, worker in enumerate(pool):
            current = worker.current
            if current is None:
                # an idle worker can still die (external kill); replace it
                # so the pool never shrinks to zero
                if not worker.process.is_alive():
                    worker.kill()
                    pool[index] = _Worker(self._context, results_queue)
                continue
            ticket, state, started = current
            overdue = self.timeout is not None and \
                now - started > self.timeout
            dead = not worker.process.is_alive()
            if not overdue and not dead:
                continue
            if overdue:
                state.timeouts += 1
                obs_metrics.inc("sweep.timeouts")
                reason = "timeout after %.1fs" % (now - started)
                logger.warning("job %s %s; killing worker",
                               state.job.key, reason)
                worker.kill()
            else:
                reason = "worker died (exitcode %s)" % \
                    worker.process.exitcode
                logger.warning("job %s: %s", state.job.key, reason)
                worker.kill()  # reap the corpse
            tickets.pop(ticket, None)
            pool[index] = _Worker(self._context, results_queue)
            self._handle_failure(state, reason, done, waiting, runner)

    def _handle_failure(self, state, reason, done, waiting,
                        runner) -> None:
        state.errors.append(reason)
        obs_metrics.inc("sweep.job_failures")
        if state.attempts <= self.retries:
            state.retries += 1
            obs_metrics.inc("sweep.retries")
            state.retry_at = time.monotonic() + \
                self.backoff * (2 ** (state.attempts - 1))
            waiting.append(state)
            return
        if self.degrade:
            self._degrade(state, done, runner)
            return
        result = JobResult(
            state.job.key, "failed", None, attempts=state.attempts,
            retries=state.retries, timeouts=state.timeouts,
            error=state.errors[-1] if state.errors else "")
        self._record(result)
        done[state.job.key] = result

    def _degrade(self, state, done, runner) -> None:
        """Last resort: run the job sequentially in this process."""
        obs_metrics.inc("sweep.degraded")
        logger.warning("job %s degraded to in-process execution after "
                       "%d failed attempt(s)", state.job.key,
                       state.attempts)
        start = time.perf_counter()
        try:
            value = runner(state.job.payload)
            result = JobResult(
                state.job.key, "ok", value, time.perf_counter() - start,
                attempts=state.attempts + 1, retries=state.retries,
                timeouts=state.timeouts, degraded=True)
        except Exception as error:
            result = JobResult(
                state.job.key, "failed", None,
                time.perf_counter() - start, attempts=state.attempts + 1,
                retries=state.retries, timeouts=state.timeouts,
                degraded=True,
                error="%s: %s" % (type(error).__name__, error))
        self._record(result)
        done[state.job.key] = result

    @staticmethod
    def _record(result: JobResult) -> None:
        if result.ok:
            obs_metrics.inc("sweep.jobs_completed")
            obs_metrics.observe("sweep.job_seconds", result.seconds)
        else:
            obs_metrics.inc("sweep.jobs_failed")
