"""§VIII-A future work, implemented: heuristic factor selection vs TDO.

The paper leaves combined-coarsening factor heuristics to future work and
relies on timing-driven optimization. This experiment implements a static,
model-guided heuristic (one configuration, no sweep) and measures how much
of TDO's benefit it recovers — and where it mis-tunes, which is the
argument for TDO.
"""

from conftest import tuning_configs

from repro.autotune import default_configs
from repro.benchsuite import BENCHMARKS, simulate_composite
from repro.benchsuite.experiments import geomean
from repro.targets import A100


def test_heuristic_vs_tdo(benchmark, report):
    report.name = "heuristic_vs_tdo"

    def run():
        rows = {}
        for name in sorted(BENCHMARKS):
            base = simulate_composite(name, A100, tier="polygeist-noopt")
            heuristic = simulate_composite(name, A100,
                                           tier="polygeist-heuristic")
            tdo = simulate_composite(name, A100, tier="polygeist",
                                     autotune_configs=tuning_configs())
            rows[name] = (base / heuristic, base / tdo)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report("HEURISTIC FACTOR SELECTION vs TIMING-DRIVEN OPTIMIZATION "
           "(A100 model)")
    report("")
    report("%-16s %14s %10s" % ("benchmark", "heuristic", "TDO"))
    report("-" * 44)
    for name, (heuristic, tdo) in rows.items():
        marker = "  <- heuristic mis-tune" if heuristic < 0.99 else ""
        report("%-16s %13.2fx %9.2fx%s" % (name, heuristic, tdo, marker))
    report("-" * 44)
    heuristic_geo = geomean([h for h, _ in rows.values()])
    tdo_geo = geomean([t for _, t in rows.values()])
    report("%-16s %13.2fx %9.2fx  (geomean)" %
           ("GEOMEAN", heuristic_geo, tdo_geo))
    report("")
    report("one static choice recovers part of the benefit; the sweep+TDO")
    report("pipeline of SVI is what captures the rest (and never regresses)")

    # TDO dominates the heuristic and never loses to the baseline
    assert tdo_geo >= heuristic_geo - 1e-9
    assert tdo_geo > 1.0
    for name, (_, tdo) in rows.items():
        assert tdo >= 0.99, "%s: TDO must not regress" % name
