"""Fig. 14 — lud main kernel performance across (block, thread) factors.

Paper shapes to reproduce: block-only beats thread-only at equal factors;
the peak needs both; thread factors breaking full warps (>= 16 for the
256-thread block) collapse; block factors whose shared memory exceeds the
limit are invalid.
"""

from conftest import FULL, sweep_totals

from repro.benchsuite.experiments import fig14_heatmap
from repro.targets import A100


def test_fig14_lud_factor_landscape(benchmark, report):
    report.name = "fig14"
    totals = (1, 2, 4, 8, 16, 32)  # always full: the cliffs ARE the figure

    def sweep():
        return fig14_heatmap(arch=A100, totals=totals)

    heatmap = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report("FIG. 14: lud_internal SPEEDUP OVER (block, thread) TOTALS "
           "(A100 model)")
    report("")
    report("         " + "".join("t=%-7d" % t for t in totals))
    peak = (None, 0.0)
    for b in totals:
        cells = []
        for t in totals:
            value = heatmap.get((b, t))
            if value is None:
                cells.append("   --   ")
            else:
                cells.append("%6.2fx  " % value)
                if value > peak[1]:
                    peak = ((b, t), value)
        report("b=%-6d %s" % (b, "".join(cells)))
    report("")
    report("peak: %.2fx at (block, thread) = %s "
           "(paper: peak at (7, 2), combined factor 14)" %
           (peak[1], peak[0]))

    # -- the paper's documented shapes -------------------------------------
    # 1. block-only beats thread-only at the same total factor
    for factor in (2, 4, 8):
        assert heatmap[(factor, 1)] > heatmap[(1, factor)] - 1e-9
    # 2. the peak uses BOTH kinds of coarsening or at least beats both
    #    single-strategy bests
    best_block = max(heatmap[(b, 1)] for b in totals
                     if heatmap.get((b, 1)))
    best_thread = max(heatmap[(1, t)] for t in totals
                      if heatmap.get((1, t)))
    assert peak[1] >= best_block and peak[1] >= best_thread
    # 3. sub-warp cliff: thread factor 32 on a 256-thread block leaves
    #    8 threads — far below a warp
    assert heatmap[(1, 32)] < heatmap[(1, 8)]
    # 4. shared-memory limit: block factor 32 needs 64 KB > 48 KB
    assert all(heatmap[(32, t)] is None for t in totals)
