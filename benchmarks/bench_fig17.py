"""Fig. 17 — cross-vendor comparison on comparable GPUs: A4000 (clang),
A4000 (Polygeist-GPU), RX6800 (Polygeist-GPU).

Paper shapes: RX6800 (Polygeist-GPU) achieves ~parity or better with the
A4000 overall (25% geomean over A4000-clang in the paper); nw is the
negative outlier on AMD (136 B shared/thread -> LDS offloaded to global);
the double-precision benchmarks (particlefilter, lavaMD, hotspot3D) favor
the RX6800's stronger FP64.
"""

from conftest import tuning_configs

from repro.benchsuite.experiments import geomean
from repro.benchsuite.sweeps import sharded_fig17_data
from repro.benchsuite import get_benchmark


def test_fig17_cross_vendor(benchmark, report):
    report.name = "fig17"

    def run():
        # one job per (benchmark, column), sharded over worker processes
        return sharded_fig17_data(configs=tuning_configs())

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    columns = ["A4000 (clang)", "A4000 (Polygeist-GPU)",
               "RX6800 (Polygeist-GPU)"]

    report("FIG. 17: CROSS-VENDOR COMPOSITES, SPEEDUP OVER A4000 (clang)")
    report("")
    report("%-16s %14s %22s %23s" % ("benchmark", *columns))
    report("-" * 80)
    ratios_rx = []
    ratios_pg = []
    for name in sorted(data):
        base = data[name][columns[0]]
        row = [base / data[name][c] for c in columns]
        ratios_pg.append(row[1])
        ratios_rx.append(row[2])
        marker = ""
        if name == "nw":
            marker = "  <- AMD LDS offload"
        elif get_benchmark(name).uses_double:
            marker = "  <- fp64 favors AMD"
        report("%-16s %13.2fx %21.2fx %22.2fx%s" %
               (name, row[0], row[1], row[2], marker))
    report("-" * 80)
    report("%-16s %13.2fx %21.2fx %22.2fx  (geomean)" %
           ("GEOMEAN", 1.0, geomean(ratios_pg), geomean(ratios_rx)))
    report("")
    report("paper: RX6800 (P-G) 25%% geomean over A4000 (clang), 9%% over "
           "A4000 (P-G)")

    # -- shapes --------------------------------------------------------------
    # fp64 benchmarks favor the RX6800 at equal (untuned) tiers: this is
    # the hardware claim (§VII-D2), separated from per-platform tuning
    for name in ("lavaMD", "hotspot3D", "particlefilter"):
        assert data[name]["RX6800 (clang)"] < \
            data[name]["A4000 (clang)"], \
            "%s (double) must favor RX6800 at equal tiers" % name
    # nw is relatively worse on AMD than the suite median
    nw_ratio = data["nw"]["RX6800 (Polygeist-GPU)"] / \
        data["nw"]["A4000 (Polygeist-GPU)"]
    suite_ratio = geomean([
        data[n]["RX6800 (Polygeist-GPU)"] / data[n]["A4000 (Polygeist-GPU)"]
        for n in data])
    assert nw_ratio > suite_ratio, \
        "nw must be a negative outlier on AMD (LDS offload)"
    # Polygeist-GPU on A4000 never loses to clang on A4000
    assert geomean(ratios_pg) >= 1.0
