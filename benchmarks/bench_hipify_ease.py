"""§VII-D1 — ease of use: hipify+clang vs Polygeist-GPU for AMD.

The paper reports that hipify needed manual intervention (hipifying external
headers, adding missing HIP includes, removing #ifdef guards) while the
IR-level route needs only compiler flags. This bench counts those manual
fixes per benchmark source.
"""

from repro.benchsuite.experiments import hipify_ease_data


def test_hipify_ease_of_use(benchmark, report):
    report.name = "hipify_ease"

    def run():
        return hipify_ease_data()

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    report("SECTION VII-D1: MANUAL FIXES NEEDED TO TARGET AMD")
    report("")
    report("%-16s %12s %18s %18s" %
           ("benchmark", "hipify auto", "hipify MANUAL", "Polygeist MANUAL"))
    report("-" * 68)
    total_hipify = 0
    for entry in reports:
        total_hipify += entry.hipify_fix_count
        report("%-16s %12d %18d %18d" %
               (entry.source_name, entry.hipify_automatic_changes,
                entry.hipify_fix_count, entry.polygeist_fix_count))
    report("-" * 68)
    report("hipify requires %d manual fixes across the suite; the "
           "Polygeist-GPU route requires 0" % total_hipify)
    report("")
    report("fix categories observed (as in the paper):")
    seen = set()
    for entry in reports:
        for fix in entry.hipify_manual_fixes:
            key = fix.split("%r")[0][:40]
            if key not in seen:
                seen.add(key)
                report("  - %s" % fix)

    assert all(e.polygeist_fix_count == 0 for e in reports)
    assert total_hipify > 0
