"""Table I — GPUs used for evaluation and their specifications.

Regenerates the paper's hardware table from the architecture models the
simulator actually uses.
"""

from repro.targets import ALL_ARCHS


def test_table1_gpu_specifications(benchmark, report):
    report.name = "table1"

    def build():
        return [arch.describe_row() for arch in ALL_ARCHS]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    keys = list(rows[0].keys())
    report("TABLE I: GPUS USED FOR EVALUATION AND THEIR SPECIFICATIONS")
    report("")
    widths = {k: max(len(k), max(len(str(r[k])) for r in rows)) + 2
              for k in keys}
    header = "".join(("%-" + str(widths[k]) + "s") % k for k in keys)
    report(header)
    report("-" * len(header))
    for row in rows:
        report("".join(("%-" + str(widths[k]) + "s") % row[k]
                       for k in keys))
    report("")
    report("(values as listed in Table I of the paper; these parameter")
    report(" sets drive the occupancy calculator and the timing model)")

    assert len(rows) == 4
    assert rows[0]["GPU"] == "NVIDIA A4000"
