"""Fig. 15 — per-dimension factors for lud: block coarsening along x
combined with thread coarsening.

Paper shapes: coarsening blocks along x preserves memory locality better
than balanced coarsening (peak 1.64x block-only at factor 9 in the paper);
adding thread coarsening lifts the peak further (1.94x at (2, 8)); the
landscape is bumpy enough to need autotuning.
"""

from conftest import FULL

from repro.benchsuite.experiments import fig15_dimension_sweep, geomean
from repro.targets import A100


def test_fig15_lud_x_dimension_sweep(benchmark, report):
    report.name = "fig15"
    block_x = tuple(range(1, 11)) if FULL else (1, 2, 3, 4, 6, 8, 9, 10)
    thread_x = (1, 2, 4, 8)

    def sweep():
        return fig15_dimension_sweep(arch=A100, block_x=block_x,
                                     thread_x=thread_x)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report("FIG. 15: lud_internal, BLOCK COARSENING ALONG X x THREAD "
           "COARSENING (A100 model)")
    report("")
    report("          " + "".join("t=%-7d" % t for t in thread_x))
    peak = (None, 0.0)
    block_only_peak = (None, 0.0)
    for bx in block_x:
        cells = []
        for tx in thread_x:
            value = results.get((bx, tx))
            if value is None:
                cells.append("   --   ")
            else:
                cells.append("%6.2fx  " % value)
                if value > peak[1]:
                    peak = ((bx, tx), value)
                if tx == 1 and value > block_only_peak[1]:
                    block_only_peak = (bx, value)
        report("bx=%-6d %s" % (bx, "".join(cells)))
    report("")
    report("block-x-only peak: %.2fx at factor %s (paper: 1.64x at 9)" %
           (block_only_peak[1], block_only_peak[0]))
    report("combined peak:     %.2fx at (block, thread) = %s "
           "(paper: 1.94x at (2, 8))" % (peak[1], peak[0]))
    report("")
    report("note the non-divisor block factors (3, 9 on a dynamic grid):")
    report("block coarsening handles them via epilogue kernels (SV-C)")

    # shapes: x-dimension block coarsening helps, combined lifts further
    assert block_only_peak[1] > 1.0
    assert peak[1] >= block_only_peak[1]
    # non-divisor factors are usable (no None in the bx=3 row)
    assert results.get((3, 1)) is not None
