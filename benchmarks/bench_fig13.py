"""Fig. 13 + §VII-B — combined block+thread coarsening vs either alone.

Sweeps total block × thread factors for every kernel in the suite on the
A100 model, reporting per-kernel best speedups per strategy and the
headline geomeans (paper: combined 11.3%, block-only 8.9%, thread-only
4.4%; combined must dominate).
"""

from conftest import tuning_configs

from repro.benchsuite.experiments import fig13_summary
from repro.benchsuite.sweeps import sharded_fig13_data
from repro.targets import A100


def test_fig13_combined_vs_single_strategy(benchmark, report):
    report.name = "fig13"

    def sweep():
        # HeCBench extras widen the kernel population, as in the paper;
        # sharded per benchmark over worker processes (serial on 1 CPU)
        return sharded_fig13_data(arch=A100, configs=tuning_configs(),
                                  include_hecbench=True)

    sweeps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    summary = fig13_summary(sweeps)

    report("FIG. 13 / SECTION VII-B: COARSENING STRATEGY COMPARISON "
           "(A100 model)")
    report("")
    report("%-16s %-18s %9s %9s %9s" %
           ("benchmark", "kernel", "thread", "block", "combined"))
    report("-" * 66)
    interesting = 0
    for sweep_result in sweeps:
        thread = sweep_result.speedup(thread_only=True)
        block = sweep_result.speedup(block_only=True)
        combined = sweep_result.speedup()
        if combined > 1.01:
            interesting += 1
        report("%-16s %-18s %8.2fx %8.2fx %8.2fx" %
               (sweep_result.benchmark, sweep_result.kernel, thread, block,
                combined))
    report("-" * 66)
    report("kernels measured: %d (with >1%% speedup: %d; paper: 75 of 181)"
           % (len(sweeps), interesting))
    report("")
    report("geomean speedups (paper: combined 11.3%, block 8.9%, "
           "thread 4.4%):")
    for strategy in ("thread_only", "block_only", "combined"):
        report("  %-12s %+.1f%%" % (strategy,
                                    (summary[strategy] - 1) * 100))
    rodinia = [s for s in sweeps if not s.benchmark.startswith("hec-")]
    rodinia_summary = fig13_summary(rodinia)
    report("")
    report("Rodinia-only geomeans (the population the paper reports):")
    for strategy in ("thread_only", "block_only", "combined"):
        report("  %-12s %+.1f%%" %
               (strategy, (rodinia_summary[strategy] - 1) * 100))
    report("")
    report("shape check: combined >= each single strategy everywhere;")
    report("block_only >= thread_only on the Rodinia population")

    assert summary["combined"] >= summary["block_only"] - 1e-9
    assert summary["combined"] >= summary["thread_only"] - 1e-9
    assert summary["combined"] > 1.0
    # the paper's block>thread ordering is a property of the Rodinia
    # population; HeCBench extras like tiled gemm legitimately favor
    # thread coarsening (register tiling)
    assert rodinia_summary["block_only"] >= \
        rodinia_summary["thread_only"] - 1e-6, \
        "paper: block coarsening alone beats thread coarsening alone"
