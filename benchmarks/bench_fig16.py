"""Fig. 16 — composite Rodinia runtimes: clang vs Polygeist-GPU without and
with the parallel optimizations, on all four GPU models.

Paper shapes: without optimizations, Polygeist-GPU is near clang parity on
NVIDIA (shared front/back-end) except lavaMD (shared-memory LICM); with
optimizations, 17-27% geomean improvement on NVIDIA and 16-17% on AMD over
the hipify+clang baseline.
"""

from conftest import tuning_configs

from repro.benchsuite.experiments import fig16_geomeans, geomean
from repro.benchsuite.sweeps import sharded_fig16_data
from repro.targets import A100, A4000, MI210, RX6800

TIERS = ("clang", "polygeist-noopt", "polygeist")


def test_fig16_composite_all_gpus(benchmark, report):
    report.name = "fig16"
    archs = [A4000, A100, RX6800, MI210]

    def run():
        # sharded over $REPRO_SWEEP_WORKERS processes; identical output
        # to the serial fig16_data (and falls back to it on 1 CPU)
        return sharded_fig16_data(archs=archs, tiers=TIERS,
                                  configs=tuning_configs())

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    report("FIG. 16: COMPOSITE RUNTIMES, NORMALIZED TO clang PER GPU")
    report("(P-G = Polygeist-GPU; no-opt disables parallel optimizations)")
    for arch in archs:
        report("")
        report("== %s ==" % arch.name)
        report("%-16s %12s %14s %12s" %
               ("benchmark", "clang", "P-G (no-opt)", "P-G (opt)"))
        report("-" * 58)
        for name in sorted(data):
            base = data[name][(arch.name, "clang")]
            noopt = data[name][(arch.name, "polygeist-noopt")]
            opt = data[name][(arch.name, "polygeist")]
            report("%-16s %11.2fx %13.2fx %11.2fx" %
                   (name, 1.0, base / noopt, base / opt))
        means = fig16_geomeans(data, arch.name)
        report("-" * 58)
        report("%-16s %11.2fx %13.2fx %11.2fx  (geomean speedup)" %
               ("GEOMEAN", means["clang"], means["polygeist-noopt"],
                means["polygeist"]))

    report("")
    report("paper: optimizations give 17-27%% geomean on NVIDIA GPUs,")
    report("       16-17%% on AMD over hipify+clang; no-opt ~ parity")

    # -- shape assertions ----------------------------------------------------
    for arch in archs:
        means = fig16_geomeans(data, arch.name)
        # optimized never slower than the baseline (TDO keeps factor 1)
        assert means["polygeist"] >= 0.99
        # optimizations add a real geomean win somewhere
    a100 = fig16_geomeans(data, A100.name)
    assert a100["polygeist"] > 1.05, \
        "expected a >5%% geomean win from coarsening+TDO on A100"
    # no-opt parity: within ~25% of clang on NVIDIA (LICM helps a few)
    assert 0.8 <= a100["polygeist-noopt"] <= 1.6
