"""Table II — profiling data for lud at (block, thread) factors (1,1),
(4,1), and (1,4).

Counters come from trace-driven functional execution through the cache
model (the Nsight Compute substitute); runtimes from the analytical model.

Paper shapes: block coarsening (4,1) REDUCES L2->L1 read traffic (fused
blocks reuse overlapping rows in L1) while keeping shared-memory requests;
thread coarsening (1,4) keeps global traffic but REDUCES shared-memory
read requests (copies share uniform tile reads).
"""

from repro.benchsuite.sweeps import sharded_table2_profile
from repro.targets import A100


def test_table2_lud_profiling(benchmark, report):
    report.name = "table2"

    def profile():
        # one job per (block, thread) config, sharded over processes
        return sharded_table2_profile(arch=A100, size=64)

    rows = benchmark.pedantic(profile, rounds=1, iterations=1)

    report("TABLE II: PROFILING DATA FOR LUD (A100 model; trace-driven "
           "counters at 64x64, modeled runtime at 8192x8192)")
    report("")
    labels = ["(1, 1)", "(4, 1)", "(1, 4)"]
    keys = list(rows[labels[0]].keys())
    report("%-28s %14s %14s %14s" % ("(block, thread) factors", *labels))
    report("-" * 76)
    for key in keys:
        report("%-28s %14s %14s %14s" %
               (key, rows[labels[0]][key], rows[labels[1]][key],
                rows[labels[2]][key]))
    report("")
    report("paper shapes:")
    report(" * (4,1) has LOWER L2->L1 read traffic than (1,1) "
           "(460 MB vs 583 MB in the paper)")
    report(" * (1,4) keeps L2->L1 traffic ~equal to (1,1) (582 MB)")
    report(" * (1,4) has FEWER shared-memory read requests "
           "(12.53 M vs 41.78 M)")
    report(" * (4,1) keeps shared-memory requests ~equal (41.62 M)")

    def parse_bytes(text):
        value, unit = text.split()
        return float(value) * {"B": 1, "KB": 1e3, "MB": 1e6,
                               "GB": 1e9}[unit]

    def parse_count(text):
        if text.endswith("M"):
            return float(text[:-2]) * 1e6
        if text.endswith("K"):
            return float(text[:-2]) * 1e3
        return float(text)

    l2_base = parse_bytes(rows["(1, 1)"]["L2 -> L1 Read"])
    l2_block = parse_bytes(rows["(4, 1)"]["L2 -> L1 Read"])
    l2_thread = parse_bytes(rows["(1, 4)"]["L2 -> L1 Read"])
    assert l2_block < l2_base, \
        "block coarsening must reduce L2->L1 read traffic"
    assert abs(l2_thread - l2_base) / l2_base < 0.25, \
        "thread coarsening keeps global traffic roughly unchanged"

    sh_base = parse_count(rows["(1, 1)"]["ShMem -> SM Read Req."])
    sh_thread = parse_count(rows["(1, 4)"]["ShMem -> SM Read Req."])
    assert sh_thread < sh_base, \
        "thread coarsening must reduce shared-memory read requests"
