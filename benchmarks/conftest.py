"""Shared helpers for the paper-reproduction benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper.
Results are printed and also written under ``benchmarks/results/`` so they
survive pytest's output capturing.

Set ``REPRO_FULL=1`` for the paper's full sweep sizes (slower); the default
uses reduced factor grids that preserve every reported shape.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: full paper sweeps when set
FULL = os.environ.get("REPRO_FULL", "") == "1"


def sweep_totals():
    return (1, 2, 4, 8, 16, 32) if FULL else (1, 2, 4, 8)


def tuning_configs():
    from repro.autotune import paper_sweep_configs
    totals = sweep_totals()
    return paper_sweep_configs(totals, totals)


@pytest.fixture
def report():
    """Collects lines; prints them and writes them to results/<bench>.txt."""
    class Report:
        def __init__(self):
            self.lines = []
            self.name = "report"

        def __call__(self, *parts):
            line = " ".join(str(p) for p in parts)
            self.lines.append(line)

        def flush(self):
            RESULTS_DIR.mkdir(exist_ok=True)
            text = "\n".join(self.lines) + "\n"
            (RESULTS_DIR / ("%s.txt" % self.name)).write_text(text)
            print("\n" + text)

    instance = Report()
    yield instance
    instance.flush()
