"""Ablations of the design choices DESIGN.md calls out.

1. **Indexing style** (Fig. 11): thread coarsening with the
   coalescing-friendly ``iv + k·new_ub`` decomposition vs naive
   ``iv·f + k`` strided indexing that destroys coalescing.
2. **Redundant load elimination**: the backend cleanup that converts
   coarsened copies' overlapping loads into reuse — without it, block
   coarsening loses its Table II traffic reduction.
3. **Aggregate TDO**: tuning over all launch geometries vs only the first
   (gaussian's shrinking grids mis-tune otherwise).
"""

import numpy as np

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.simulator import analyze_coalescing
from repro.simulator.model import KernelModel
from repro.targets import A100
from repro.transforms import run_cleanup, unroll_and_interleave
from repro.transforms.coarsen import block_parallels, thread_parallel
from repro.transforms.pipeline import default_cleanup_pipeline
from repro.transforms import (Canonicalize, CSE, DCE)
from repro.ir import PassManager

COALESCED = """
__global__ void copy(float *a, float *b) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    b[i] = a[i] * 2.0f;
}
"""

LUD_SOURCE = None  # filled from the benchsuite


def _thread_loop(coarsen_style=None, factor=4):
    unit = parse_translation_unit(COALESCED)
    generator = ModuleGenerator(unit)
    generator.get_launch_wrapper("copy", 1, (128,))
    run_cleanup(generator.module)
    wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
    main = block_parallels(wrapper)[0]
    threads = thread_parallel(main)
    if coarsen_style:
        threads, _ = unroll_and_interleave(threads, 0, factor,
                                           style=coarsen_style)
        run_cleanup(generator.module)
    return generator.module, main, threads


def test_ablation_indexing_style(benchmark, report):
    """Fig. 11: naive strided indexing destroys coalescing."""
    report.name = "ablation_indexing"

    def run():
        results = {}
        for label, style in (("baseline", None),
                             ("coalescing-friendly", "thread"),
                             ("naive strided", "thread_naive")):
            module, main, threads = _thread_loop(style)
            accesses = analyze_coalescing(threads, A100.warp_size)
            model = KernelModel(main, A100)
            timing = model.time_launch(1 << 14)
            results[label] = {
                "strides": sorted({a.stride_x for a in accesses},
                                  key=lambda s: (s is None, s)),
                "efficiency": min(a.efficiency for a in accesses),
                "seconds": timing.time_seconds,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ABLATION: THREAD-COARSENING INDEXING STYLE (Fig. 11), "
           "factor 4, A100 model")
    report("")
    report("%-22s %-14s %12s %14s" % ("style", "strides", "worst eff.",
                                      "modeled time"))
    report("-" * 66)
    for label, row in results.items():
        report("%-22s %-14s %11.0f%% %13.2e" %
               (label, row["strides"], row["efficiency"] * 100,
                row["seconds"]))
    report("")
    report("the paper's choice (iv + k*new_ub) keeps stride 1; naive "
           "iv*f + k quadruples transactions")

    assert results["coalescing-friendly"]["strides"] == [1]
    assert results["naive strided"]["strides"] == [4]
    assert results["naive strided"]["seconds"] > \
        results["coalescing-friendly"]["seconds"]


def test_ablation_redundant_load_elimination(benchmark, report):
    """Block coarsening's L2-traffic win disappears without RLE."""
    report.name = "ablation_rle"
    from repro.benchsuite import get_benchmark
    from repro.transforms import coarsen_wrapper

    def build(with_rle):
        bench = get_benchmark("lud")
        unit = parse_translation_unit(bench.source)
        generator = ModuleGenerator(unit)
        generator.get_launch_wrapper("lud_internal", 2, (16, 16))
        run_cleanup(generator.module)
        wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
        coarsen_wrapper(wrapper, block_factors=(4, 1))
        if with_rle:
            run_cleanup(generator.module)
        else:
            PassManager([Canonicalize(), CSE(), DCE()],
                        verify=False).run_until_fixpoint(generator.module)
        main = block_parallels(wrapper, include_epilogues=False)[0]
        return KernelModel(main, A100)

    def run():
        with_rle = build(True)
        without_rle = build(False)
        return {
            "with RLE": with_rle.stats.loads_global,
            "without RLE": without_rle.stats.loads_global,
        }

    loads = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ABLATION: REDUNDANT LOAD ELIMINATION on block-coarsened "
           "lud_internal (x4 along x)")
    report("")
    for label, value in loads.items():
        report("  global loads per thread %-14s %.1f" % (label, value))
    report("")
    report("RLE removes the copies' overlapping column loads — the "
           "mechanism behind Table II's L2->L1 reduction")

    assert loads["with RLE"] < loads["without RLE"]


def test_ablation_aggregate_tdo(benchmark, report):
    """Tuning on all launch geometries vs only the first (gaussian)."""
    report.name = "ablation_tdo"
    from repro.autotune import default_configs
    from repro.benchsuite import get_benchmark
    from repro.pipeline import Program

    def run():
        bench = get_benchmark("gaussian")
        size = 512
        launches = list(bench.iter_launches(size))

        def total_with(tune_grids):
            program = Program(bench.source, arch=A100, tier="polygeist",
                              autotune_configs=default_configs(8))
            grouped = {}
            for kernel, grid, block in launches:
                grouped.setdefault((kernel, tuple(block)),
                                   []).append(grid)
            for (kernel, block), grids in grouped.items():
                program.tune_aggregate(kernel, block,
                                       grids if tune_grids == "all"
                                       else grids[:1])
            return sum(program.model_launch(k, g, b).time_seconds
                       for k, g, b in launches)

        return {"first launch only": total_with("first"),
                "all launches (paper's profiling mode)": total_with("all")}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ABLATION: TDO TUNING SCOPE on gaussian (512, A100 model)")
    report("")
    for label, value in totals.items():
        report("  %-40s %.3e s" % (label, value))
    report("")
    report("profiling over the whole run avoids over-coarsening for the "
           "large early grids")

    assert totals["all launches (paper's profiling mode)"] <= \
        totals["first launch only"] * 1.0001
